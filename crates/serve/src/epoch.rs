//! Epoch-published snapshots: single-writer, many lock-free readers.
//!
//! The write loop owns the mutable PPR states. After every converged batch
//! it *publishes* an immutable [`crate::QuerySnapshot`] per session into a
//! [`SnapshotCell`] by an atomic pointer swap; readers pick the snapshot up
//! with two atomic stores and two atomic loads — no mutex, no blocking of
//! the writer, and never a torn state (a snapshot is immutable from the
//! moment it is published).
//!
//! Reclamation is the classic epoch scheme. `std`'s `Arc` alone cannot make
//! the swap safe: a reader that has loaded the raw pointer but not yet
//! incremented the strong count races a writer dropping the last reference.
//! The [`EpochDomain`] closes exactly that window:
//!
//! * the domain keeps a global epoch counter, bumped once per publication
//!   round, and one *pin slot* per registered reader;
//! * a reader **pins** (stores the current epoch into its slot, then
//!   re-checks the epoch), loads the pointer, bumps the strong count, and
//!   unpins — the pinned section is a handful of instructions;
//! * the writer never frees a swapped-out snapshot immediately: it retires
//!   it with the epoch at which it became unreachable and only drops it
//!   once every active pin is from a *strictly later* epoch.
//!
//! All operations are `SeqCst`. The safety argument (spelled out on
//! [`SnapshotCell::publish`]) needs the single total order: a reader whose
//! pin-confirm observed epoch `e` can only load pointers that were still
//! current when the epoch became `e`, so an entry retired at epoch `r` is
//! unreachable to every pin with `e > r`.

use crate::snapshot::QuerySnapshot;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Pin-slot value: the slot is unallocated.
const FREE: u64 = u64::MAX;
/// Pin-slot value: the slot belongs to a reader that is not inside a
/// pinned section right now.
const IDLE: u64 = u64::MAX - 1;

/// The shared epoch counter and reader pin slots for one serving instance.
/// All of an instance's [`SnapshotCell`]s publish at the same epoch, so one
/// domain serves every session.
pub struct EpochDomain {
    epoch: AtomicU64,
    pins: Box<[AtomicU64]>,
}

impl EpochDomain {
    /// A domain with capacity for `max_readers` concurrently registered
    /// readers. Epochs start at 0; the first publication round is epoch 1.
    pub fn new(max_readers: usize) -> Arc<Self> {
        let pins = (0..max_readers.max(1))
            .map(|_| AtomicU64::new(FREE))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(EpochDomain { epoch: AtomicU64::new(0), pins })
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Starts a new publication round; returns the new epoch. Called by
    /// the write loop once per batch, *before* the per-session publishes.
    pub fn advance(&self) -> u64 {
        self.epoch.fetch_add(1, SeqCst) + 1
    }

    /// Jumps the epoch counter forward to `epoch` — the recovery path,
    /// so a restarted server resumes numbering where the crashed one
    /// left off instead of re-issuing epochs that clients may have seen.
    /// Only meaningful before any readers are registered.
    ///
    /// # Panics
    /// When `epoch` would move the counter backwards.
    pub fn resume_at(&self, epoch: u64) {
        let current = self.epoch.load(SeqCst);
        assert!(epoch >= current, "cannot rewind epoch {current} to {epoch}");
        self.epoch.store(epoch, SeqCst);
    }

    /// Claims a pin slot for the calling thread. The slot is released when
    /// the returned [`Reader`] drops.
    ///
    /// # Panics
    /// When all `max_readers` slots are taken — size the domain to the
    /// worker-thread count plus slack.
    pub fn register_reader(self: &Arc<Self>) -> Reader {
        for (slot, pin) in self.pins.iter().enumerate() {
            if pin.compare_exchange(FREE, IDLE, SeqCst, SeqCst).is_ok() {
                return Reader { domain: Arc::clone(self), slot };
            }
        }
        panic!(
            "EpochDomain reader capacity ({}) exhausted",
            self.pins.len()
        );
    }

    /// Number of currently registered readers.
    pub fn registered_readers(&self) -> usize {
        self.pins.iter().filter(|p| p.load(SeqCst) != FREE).count()
    }

    /// The smallest epoch any reader is currently pinned at; `u64::MAX`
    /// when no pinned section is active.
    fn min_pinned(&self) -> u64 {
        self.pins
            .iter()
            .map(|p| p.load(SeqCst))
            .filter(|&e| e < IDLE)
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// A registered reader: owns one pin slot of its [`EpochDomain`].
pub struct Reader {
    domain: Arc<EpochDomain>,
    slot: usize,
}

impl Reader {
    /// Enters a pinned section; returns the confirmed epoch. The
    /// store-then-recheck loop guarantees that once this returns `e`, the
    /// slot held `e` *before* the epoch moved past `e` — which is what the
    /// writer's reclamation scan relies on.
    fn pin(&self) -> u64 {
        let pin = &self.domain.pins[self.slot];
        loop {
            let e = self.domain.epoch.load(SeqCst);
            pin.store(e, SeqCst);
            if self.domain.epoch.load(SeqCst) == e {
                return e;
            }
        }
    }

    fn unpin(&self) {
        self.domain.pins[self.slot].store(IDLE, SeqCst);
    }

    /// The domain this reader belongs to.
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }
}

impl Drop for Reader {
    fn drop(&mut self) {
        self.domain.pins[self.slot].store(FREE, SeqCst);
    }
}

/// One session's published snapshot: an atomic pointer to the current
/// `Arc<QuerySnapshot>` plus the deferred-reclamation list.
pub struct SnapshotCell {
    /// Raw form of an `Arc<QuerySnapshot>` — the cell owns one strong count
    /// for whatever pointer is stored here.
    current: AtomicPtr<QuerySnapshot>,
    /// Swapped-out snapshots the writer still owes a strong-count drop,
    /// tagged with the epoch at which they became unreachable. Touched only
    /// by the (single) writer, but a `Mutex` keeps misuse safe.
    retired: Mutex<Vec<(u64, Arc<QuerySnapshot>)>>,
}

impl SnapshotCell {
    /// A cell currently publishing `initial`.
    pub fn new(initial: Arc<QuerySnapshot>) -> Self {
        SnapshotCell {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Loads the current snapshot: pin, pointer load, strong-count bump,
    /// unpin. Wait-free apart from the (writer-frequency-bounded) pin
    /// retry; never blocks `publish` and never observes a torn snapshot.
    pub fn load(&self, reader: &Reader) -> Arc<QuerySnapshot> {
        reader.pin();
        let p = self.current.load(SeqCst);
        // SAFETY: `p` came from `Arc::into_raw` (only `new`/`publish` store
        // into `current`). While the reader is pinned, `publish` keeps the
        // strong count it owns for any pointer this load can observe (see
        // its reclamation condition), so the count is ≥ 1 throughout the
        // increment.
        let snap = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        reader.unpin();
        snap
    }

    /// Publishes `snap` (writer only; call after [`EpochDomain::advance`])
    /// and reclaims every retired snapshot no pinned reader can still see.
    ///
    /// Safety of the reclamation: an entry is dropped only when
    /// `retire_epoch < min_pinned`. A reader that could still raw-load the
    /// entry's pointer pinned at some epoch `e`; `retire_epoch` was read
    /// *after* the swap, and the reader's pin-confirm *before* its pointer
    /// load, so in the SeqCst total order `e ≤ retire_epoch` — meaning the
    /// entry is retained until that pin leaves. Conversely a pin appearing
    /// after the reclamation scan read the slot as idle is ordered after
    /// the swap and can only load the new pointer.
    pub fn publish(&self, domain: &EpochDomain, snap: Arc<QuerySnapshot>) {
        let fresh = Arc::into_raw(snap).cast_mut();
        let old = self.current.swap(fresh, SeqCst);
        let retire_epoch = domain.epoch();
        // SAFETY: `old` was stored by `new`/`publish`, which transferred
        // one strong count to the cell; we take that count back. Readers
        // hold their own counts.
        let old_arc = unsafe { Arc::from_raw(old) };
        let mut retired = self.retired.lock().unwrap();
        retired.push((retire_epoch, old_arc));
        let min_pinned = domain.min_pinned();
        retired.retain(|&(e, _)| e >= min_pinned);
    }

    /// Snapshots awaiting reclamation (diagnostics / tests).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap().len()
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // SAFETY: the cell owns one strong count for `current`; no readers
        // can hold a `&self` anymore.
        unsafe { drop(Arc::from_raw(self.current.load(SeqCst))) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, scores: &[f64]) -> Arc<QuerySnapshot> {
        Arc::new(QuerySnapshot::new(0, epoch, 0.15, 1e-3, scores.to_vec()))
    }

    #[test]
    fn load_returns_latest_published() {
        let domain = EpochDomain::new(2);
        let reader = domain.register_reader();
        let cell = SnapshotCell::new(snap(0, &[0.1]));
        assert_eq!(cell.load(&reader).epoch(), 0);
        let e = domain.advance();
        cell.publish(&domain, snap(e, &[0.2]));
        let got = cell.load(&reader);
        assert_eq!(got.epoch(), 1);
        assert_eq!(got.estimates(), &[0.2]);
    }

    #[test]
    fn retired_snapshots_drain_without_pinned_readers() {
        let domain = EpochDomain::new(2);
        let cell = SnapshotCell::new(snap(0, &[0.1]));
        for i in 1..=10 {
            let e = domain.advance();
            cell.publish(&domain, snap(e, &[0.1 * i as f64]));
            // No reader is ever pinned, so at most the entry just pushed
            // may linger — and with min_pinned = MAX even it drains.
            assert_eq!(cell.retired_len(), 0, "round {i}");
        }
    }

    #[test]
    fn old_snapshot_stays_valid_while_reader_holds_it() {
        let domain = EpochDomain::new(2);
        let reader = domain.register_reader();
        let cell = SnapshotCell::new(snap(0, &[0.7]));
        let held = cell.load(&reader);
        for i in 1..=5 {
            let e = domain.advance();
            cell.publish(&domain, snap(e, &[0.0]));
            let _ = i;
        }
        // The reader's own strong count keeps the old contents alive even
        // though the writer reclaimed its reference long ago.
        assert_eq!(held.epoch(), 0);
        assert_eq!(held.estimates(), &[0.7]);
        assert_eq!(cell.load(&reader).epoch(), 5);
    }

    #[test]
    fn resume_at_fast_forwards_epoch() {
        let domain = EpochDomain::new(1);
        domain.resume_at(17);
        assert_eq!(domain.epoch(), 17);
        assert_eq!(domain.advance(), 18);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn resume_at_rejects_rewind() {
        let domain = EpochDomain::new(1);
        domain.resume_at(5);
        domain.resume_at(3);
    }

    #[test]
    fn reader_slots_are_reused_after_drop() {
        let domain = EpochDomain::new(2);
        let a = domain.register_reader();
        let b = domain.register_reader();
        assert_eq!(domain.registered_readers(), 2);
        drop(a);
        assert_eq!(domain.registered_readers(), 1);
        let _c = domain.register_reader(); // reuses the freed slot
        drop(b);
        assert_eq!(domain.registered_readers(), 1);
    }

    #[test]
    #[should_panic(expected = "reader capacity")]
    fn reader_exhaustion_panics() {
        let domain = EpochDomain::new(1);
        let _a = domain.register_reader();
        let _b = domain.register_reader();
    }
}
