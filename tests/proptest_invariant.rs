//! Property-based tests over random graphs and update scripts.

use dppr::core::{
    exact_ppr, max_invariant_violation, DynamicPprEngine, ParallelEngine, PprConfig,
    PushVariant, SeqEngine, UpdateMode,
};
use dppr::graph::{DynamicGraph, EdgeOp, EdgeUpdate};
use proptest::prelude::*;

/// Strategy: a script of updates over a small vertex universe, chunked
/// into batches.
fn update_script(n: u32, len: usize) -> impl Strategy<Value = Vec<EdgeUpdate>> {
    prop::collection::vec(
        (0..n, 0..n, prop::bool::weighted(0.75)).prop_map(|(u, v, ins)| EdgeUpdate {
            src: u,
            dst: v,
            op: if ins { EdgeOp::Insert } else { EdgeOp::Delete },
        }),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Eq. 2 holds and estimates are ε-accurate after any update script,
    /// for the optimized parallel engine.
    #[test]
    fn parallel_opt_invariant_and_accuracy(
        script in update_script(24, 200),
        batch_size in 1usize..40,
        alpha in 0.05f64..0.9,
    ) {
        let cfg = PprConfig::new(0, alpha, 1e-3);
        let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
        let mut g = DynamicGraph::new();
        for chunk in script.chunks(batch_size) {
            engine.apply_batch(&mut g, chunk);
        }
        prop_assert!(max_invariant_violation(&g, engine.state()) < 1e-8);
        prop_assert!(engine.state().converged());
        let truth = exact_ppr(&g, 0, alpha, 1e-12);
        for (v, &t) in truth.iter().enumerate() {
            prop_assert!((engine.estimate(v as u32) - t).abs() <= 1e-3 + 1e-9);
        }
    }

    /// All four parallel variants and the sequential engine land within 2ε
    /// of each other on the same script.
    #[test]
    fn variants_agree(script in update_script(20, 120), batch_size in 1usize..30) {
        let cfg = PprConfig::new(1, 0.2, 1e-3);
        let mut reference = SeqEngine::new(cfg, UpdateMode::Batched);
        let mut g0 = DynamicGraph::new();
        for chunk in script.chunks(batch_size) {
            reference.apply_batch(&mut g0, chunk);
        }
        for variant in PushVariant::ALL {
            let mut engine = ParallelEngine::new(cfg, variant);
            let mut g = DynamicGraph::new();
            for chunk in script.chunks(batch_size) {
                engine.apply_batch(&mut g, chunk);
            }
            prop_assert_eq!(g.num_edges(), g0.num_edges());
            for v in 0..g.num_vertices().max(g0.num_vertices()) as u32 {
                prop_assert!(
                    (engine.estimate(v) - reference.estimate(v)).abs() <= 2e-3 + 1e-9,
                    "{} vs sequential at {}", variant, v
                );
            }
        }
    }

    /// Batching granularity never changes the answer beyond 2ε: applying
    /// the script one-update-at-a-time vs one big batch.
    #[test]
    fn batching_is_semantically_transparent(script in update_script(16, 80)) {
        let cfg = PprConfig::new(0, 0.25, 1e-3);
        let mut one = ParallelEngine::new(cfg, PushVariant::OPT);
        let mut g1 = DynamicGraph::new();
        for upd in &script {
            one.apply_batch(&mut g1, std::slice::from_ref(upd));
        }
        let mut all = ParallelEngine::new(cfg, PushVariant::OPT);
        let mut g2 = DynamicGraph::new();
        all.apply_batch(&mut g2, &script);
        prop_assert_eq!(g1.num_edges(), g2.num_edges());
        for v in 0..g1.num_vertices().max(g2.num_vertices()) as u32 {
            prop_assert!((one.estimate(v) - all.estimate(v)).abs() <= 2e-3 + 1e-9);
        }
    }

    /// Estimates are always valid probabilities-ish: within [−ε, 1+ε].
    #[test]
    fn estimates_bounded(script in update_script(16, 100)) {
        let cfg = PprConfig::new(2, 0.15, 1e-3);
        let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
        let mut g = DynamicGraph::new();
        engine.apply_batch(&mut g, &script);
        for v in 0..g.num_vertices() as u32 {
            let p = engine.estimate(v);
            prop_assert!((-1e-3 - 1e-9..=1.0 + 1e-3 + 1e-9).contains(&p), "p({})={}", v, p);
        }
    }
}
