//! Criterion companion to Figure 4: per-slide latency of the four parallel
//! push variants (Table 3) plus the two sequential baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use dppr_bench::{build_engine, time_slides, EngineKind, Workload};
use dppr_core::PushVariant;
use dppr_graph::presets;

fn bench_push_variants(c: &mut Criterion) {
    let workload = Workload::prepare(presets::small_sim(), 1, 0.1, 1_000);
    let eps = 1e-5;
    let batch = 1_000usize;
    let mut group = c.benchmark_group("push_variants");
    group.sample_size(10);
    for variant in PushVariant::ALL {
        let cfg = workload.config(eps);
        group.bench_function(variant.name(), |b| {
            b.iter_custom(|iters| {
                time_slides(
                    || build_engine(EngineKind::CpuMt(variant), cfg, workload.num_vertices, 1),
                    &workload,
                    batch,
                    iters,
                )
            })
        });
    }
    let cfg = workload.config(eps);
    group.bench_function("CPU-Seq", |b| {
        b.iter_custom(|iters| {
            time_slides(
                || build_engine(EngineKind::CpuSeq, cfg, workload.num_vertices, 1),
                &workload,
                batch,
                iters,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_push_variants);
criterion_main!(benches);
