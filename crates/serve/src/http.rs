//! Minimal std-only HTTP/1.0 plumbing: request parsing and JSON responses.
//!
//! The serving front end speaks just enough HTTP for `curl`, browsers, and
//! load generators: one request per connection (`Connection: close`),
//! request line + headers parsed, headers otherwise ignored, no bodies
//! read (every endpoint is parameterized through the query string, so
//! `POST /session/open?source=7` works from `curl -X POST` without
//! chunked-body handling).

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed request line: method, path, and decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased).
    pub method: String,
    /// The path without the query string, e.g. `/topk`.
    pub path: String,
    /// Query parameters in order of appearance.
    pub params: Vec<(String, String)>,
}

impl Request {
    /// Parses a request line like `GET /topk?source=0&k=5 HTTP/1.0`.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let mut it = line.split_whitespace();
        let method = it
            .next()
            .ok_or_else(|| "empty request line".to_string())?
            .to_ascii_uppercase();
        let target = it.next().ok_or_else(|| "missing request target".to_string())?;
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let params = query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (kv.to_string(), String::new()),
            })
            .collect();
        Ok(Request { method, path: path.to_string(), params })
    }

    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a query parameter, with a default when absent.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("invalid value for {key}: {raw:?}")),
        }
    }

    /// Parses a required query parameter.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self
            .param(key)
            .ok_or_else(|| format!("missing required parameter {key}"))?;
        raw.parse::<T>()
            .map_err(|_| format!("invalid value for {key}: {raw:?}"))
    }
}

/// Cap on request line + headers. A client may not feed a worker more
/// than this: without it, a newline-free byte stream would grow the line
/// buffer without bound (the read timeout never fires while bytes keep
/// arriving).
const MAX_REQUEST_BYTES: u64 = 16 * 1024;

/// Reads one request from the connection: the request line, then headers
/// up to the blank line (discarded). Bounded by [`MAX_REQUEST_BYTES`].
pub fn read_request(conn: &mut TcpStream) -> io::Result<Request> {
    use std::io::Read as _;
    // A stuck client must not pin a worker forever.
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new((&mut *conn).take(MAX_REQUEST_BYTES));
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if !line.ends_with('\n') && reader.get_ref().limit() == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line exceeds the size limit",
        ));
    }
    let req = Request::parse_line(line.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    Ok(req)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Writes a complete JSON response and flushes.
pub fn respond_json(conn: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        body.len()
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_with_params() {
        let r = Request::parse_line("GET /topk?source=0&k=5&flag HTTP/1.0").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/topk");
        assert_eq!(r.param("source"), Some("0"));
        assert_eq!(r.parsed_or("k", 10usize).unwrap(), 5);
        assert_eq!(r.parsed_or("missing", 10usize).unwrap(), 10);
        assert_eq!(r.param("flag"), Some(""));
        assert_eq!(r.require::<u32>("source").unwrap(), 0);
        assert!(r.require::<u32>("k2").is_err());
        assert!(r.parsed_or("source", 1.5f64).is_ok());
    }

    #[test]
    fn parses_bare_paths_and_post() {
        let r = Request::parse_line("post /shutdown HTTP/1.0").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/shutdown");
        assert!(r.params.is_empty());
        assert!(Request::parse_line("").is_err());
        assert!(Request::parse_line("GET").is_err());
    }
}
