//! Erdős–Rényi `G(n, m)` directed graphs.

use crate::types::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Samples `m` distinct directed edges (no self-loops) uniformly among the
/// `n·(n−1)` possible arcs. If `m` exceeds that maximum the complete digraph
/// is returned.
///
/// Rejection sampling keeps the expected cost O(m) while the graph is sparse
/// (the regime of every experiment in the paper).
pub fn erdos_renyi(n: VertexId, m: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n >= 2 || m == 0, "need at least two vertices for any edge");
    let max_edges = n as usize * (n as usize - 1);
    if m >= max_edges {
        let mut all = Vec::with_capacity(max_edges);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    all.push((u, v));
                }
            }
        }
        return all;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && seen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    edges
}
