//! ε-aware queries over a maintained PPR state.
//!
//! The engines guarantee `|π(v) − Ps(v)| ≤ ε` at convergence, so every
//! estimate carries the interval `[Ps(v) − ε, Ps(v) + ε]`. The queries
//! here — top-k and threshold selection, the primitives behind the
//! recommendation and search applications the paper motivates — expose
//! that uncertainty instead of hiding it: results are split into vertices
//! that are *certainly* in the answer and those that are only *possibly*
//! in it.
//!
//! Each query exists in two forms: over a live [`PprState`] (borrowing the
//! engine) and over a plain `(&[f64], ε)` score slice. The slice forms are
//! what `dppr-serve` runs against its immutable epoch snapshots, where the
//! engine itself is not reachable from reader threads.

use crate::multi::top_k_of;
use crate::state::PprState;
use dppr_graph::VertexId;

/// An estimate with its ε-interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedScore {
    /// The vertex.
    pub vertex: VertexId,
    /// The point estimate `Ps(v)`.
    pub estimate: f64,
    /// Guaranteed lower bound `Ps(v) − ε` (clamped at 0).
    pub lo: f64,
    /// Guaranteed upper bound `Ps(v) + ε` (clamped at 1).
    pub hi: f64,
}

/// Result of a threshold query.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdAnswer {
    /// Vertices with `lo ≥ δ`: in the answer under any consistent truth.
    pub certain: Vec<BoundedScore>,
    /// Vertices with `lo < δ ≤ hi`: membership depends on the true value.
    pub possible: Vec<BoundedScore>,
}

/// Result of a top-k query.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKAnswer {
    /// The top-k by point estimate, best first.
    pub ranking: Vec<BoundedScore>,
    /// Whether the k-th ranked vertex is separated from the (k+1)-th by
    /// more than `2ε` — i.e. the set (not necessarily the order) is exact.
    pub set_is_certain: bool,
}

/// The ε-interval around one score. Reads 0 for out-of-range vertices
/// (they are unmaterialized, i.e. their estimate is exactly 0).
pub fn bounded_score(scores: &[f64], eps: f64, v: VertexId) -> BoundedScore {
    let p = scores.get(v as usize).copied().unwrap_or(0.0);
    BoundedScore {
        vertex: v,
        estimate: p,
        lo: (p - eps).max(0.0),
        hi: (p + eps).min(1.0),
    }
}

fn bounded(state: &PprState, v: VertexId) -> BoundedScore {
    let eps = state.config().epsilon;
    let p = state.p(v);
    BoundedScore {
        vertex: v,
        estimate: p,
        lo: (p - eps).max(0.0),
        hi: (p + eps).min(1.0),
    }
}

/// [`top_k`] over a plain score slice.
pub fn top_k_scores(scores: &[f64], eps: f64, k: usize) -> TopKAnswer {
    // One extra entry decides set certainty.
    let extended = top_k_of(scores, k + 1);
    let ranking: Vec<BoundedScore> = extended
        .iter()
        .take(k)
        .map(|&(v, _)| bounded_score(scores, eps, v))
        .collect();
    let set_is_certain = match (ranking.last(), extended.get(k)) {
        (Some(last), Some(&(_, runner_up))) => last.estimate - runner_up > 2.0 * eps,
        // Fewer than k+1 vertices exist: the set is trivially exact.
        _ => true,
    };
    TopKAnswer { ranking, set_is_certain }
}

/// Top-`k` vertices by estimate, with interval bounds and a certainty
/// verdict for the answer *set*.
pub fn top_k(state: &PprState, k: usize) -> TopKAnswer {
    top_k_scores(&state.estimates(), state.config().epsilon, k)
}

/// [`above_threshold`] over a plain score slice.
pub fn above_threshold_scores(scores: &[f64], eps: f64, delta: f64) -> ThresholdAnswer {
    let mut certain = Vec::new();
    let mut possible = Vec::new();
    for v in 0..scores.len() as VertexId {
        let b = bounded_score(scores, eps, v);
        if b.lo >= delta {
            certain.push(b);
        } else if b.hi >= delta {
            possible.push(b);
        }
    }
    let by_est = |a: &BoundedScore, b: &BoundedScore| {
        b.estimate
            .partial_cmp(&a.estimate)
            .unwrap()
            .then(a.vertex.cmp(&b.vertex))
    };
    certain.sort_by(by_est);
    possible.sort_by(by_est);
    ThresholdAnswer { certain, possible }
}

/// All vertices whose true PPR value may reach `delta`, split by
/// certainty. Both lists are sorted by descending estimate.
pub fn above_threshold(state: &PprState, delta: f64) -> ThresholdAnswer {
    above_threshold_scores(&state.estimates(), state.config().epsilon, delta)
}

/// [`compare`] over a plain score slice.
pub fn compare_scores(
    scores: &[f64],
    eps: f64,
    a: VertexId,
    b: VertexId,
) -> Option<std::cmp::Ordering> {
    let ba = bounded_score(scores, eps, a);
    let bb = bounded_score(scores, eps, b);
    if ba.lo > bb.hi {
        Some(std::cmp::Ordering::Greater)
    } else if bb.lo > ba.hi {
        Some(std::cmp::Ordering::Less)
    } else if a == b {
        Some(std::cmp::Ordering::Equal)
    } else {
        None
    }
}

/// Compares two vertices' true PPR values as far as ε allows:
/// `Some(ordering)` when the intervals are disjoint, `None` when the
/// comparison is undecidable at this ε. (Reads the two estimates directly
/// rather than copying the vector like the slice form would need.)
pub fn compare(state: &PprState, a: VertexId, b: VertexId) -> Option<std::cmp::Ordering> {
    let ba = bounded(state, a);
    let bb = bounded(state, b);
    if ba.lo > bb.hi {
        Some(std::cmp::Ordering::Greater)
    } else if bb.lo > ba.hi {
        Some(std::cmp::Ordering::Less)
    } else if a == b {
        Some(std::cmp::Ordering::Equal)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PprConfig;

    fn state_with(ps: &[f64], eps: f64) -> PprState {
        let mut st = PprState::new(PprConfig::new(0, 0.15, eps));
        st.ensure_len(ps.len());
        for (v, &p) in ps.iter().enumerate() {
            st.set_p(v as u32, p);
        }
        st
    }

    #[test]
    fn top_k_with_clear_separation() {
        let st = state_with(&[0.5, 0.3, 0.1, 0.05], 0.01);
        let ans = top_k(&st, 2);
        assert_eq!(ans.ranking.len(), 2);
        assert_eq!(ans.ranking[0].vertex, 0);
        assert_eq!(ans.ranking[1].vertex, 1);
        assert!(ans.set_is_certain); // 0.3 − 0.1 = 0.2 > 2ε
        assert!((ans.ranking[0].lo - 0.49).abs() < 1e-12);
        assert!((ans.ranking[0].hi - 0.51).abs() < 1e-12);
    }

    #[test]
    fn top_k_with_ambiguous_boundary() {
        let st = state_with(&[0.5, 0.105, 0.1], 0.01);
        let ans = top_k(&st, 2);
        assert!(!ans.set_is_certain); // 0.105 − 0.1 < 2ε
    }

    #[test]
    fn top_k_larger_than_universe() {
        let st = state_with(&[0.5, 0.3], 0.01);
        let ans = top_k(&st, 10);
        assert_eq!(ans.ranking.len(), 2);
        assert!(ans.set_is_certain);
    }

    #[test]
    fn threshold_split() {
        let st = state_with(&[0.5, 0.11, 0.095, 0.01], 0.01);
        let ans = above_threshold(&st, 0.1);
        let certain: Vec<u32> = ans.certain.iter().map(|b| b.vertex).collect();
        let possible: Vec<u32> = ans.possible.iter().map(|b| b.vertex).collect();
        assert_eq!(certain, vec![0, 1]); // 0.11 − 0.01 = 0.10 ≥ δ
        assert_eq!(possible, vec![2]); // 0.095 + 0.01 ≥ δ but 0.085 < δ
    }

    #[test]
    fn compare_decidability() {
        let st = state_with(&[0.5, 0.1, 0.095], 0.01);
        assert_eq!(compare(&st, 0, 1), Some(std::cmp::Ordering::Greater));
        assert_eq!(compare(&st, 1, 0), Some(std::cmp::Ordering::Less));
        assert_eq!(compare(&st, 1, 2), None); // overlapping intervals
        assert_eq!(compare(&st, 1, 1), Some(std::cmp::Ordering::Equal));
    }

    #[test]
    fn bounds_are_clamped() {
        let st = state_with(&[0.005, 0.999], 0.01);
        let ans = top_k(&st, 2);
        assert_eq!(ans.ranking[0].hi, 1.0);
        assert_eq!(ans.ranking[1].lo, 0.0);
    }
}
