//! Dynamic directed graph substrate for the `dppr` workspace.
//!
//! This crate provides everything the Personalized-PageRank engines need from
//! the graph layer of Guo et al., *Parallel Personalized PageRank on Dynamic
//! Graphs* (VLDB 2017):
//!
//! * [`DynamicGraph`] — an in-memory directed graph with both out- and
//!   in-adjacency, supporting edge insertion and deletion (the `ΔEt` update
//!   model of §2.2 of the paper).
//! * [`CsrGraph`] — an immutable compressed-sparse-row snapshot for
//!   read-mostly analytics and baselines.
//! * [`generators`] — seeded Erdős–Rényi, Barabási–Albert and R-MAT
//!   generators used as laptop-scale stand-ins for the SNAP datasets of the
//!   paper's §5.1 (see `DESIGN.md` for the substitution rationale).
//! * [`stream`] — timestamped edge streams and the sliding-window update
//!   model used throughout the paper's evaluation.
//! * [`io`] — SNAP-style edge-list text I/O.
//! * [`presets`] — the five named synthetic datasets mirroring the paper's
//!   evaluation graphs.

pub mod csr;
pub mod dynamic;
pub mod generators;
pub mod io;
pub mod presets;
pub mod stats;
pub mod stream;
pub mod types;

pub use csr::CsrGraph;
pub use dynamic::{DynamicGraph, SubstrateStats};
pub use stream::{GraphStream, SlidingWindow};
pub use types::{EdgeOp, EdgeUpdate, VertexId};
