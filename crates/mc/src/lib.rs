//! Incremental Monte-Carlo PPR — the `Monte-Carlo` baseline of Figure 5.
//!
//! Implements the random-walk maintenance scheme of Bahmani, Chowdhury &
//! Goel, *Fast incremental and personalized PageRank* (PVLDB 4(3), 2010),
//! reference [10] of the paper:
//!
//! * `w` independent α-terminating random walks are simulated from the
//!   source; the PPR estimate of `v` is the fraction of walks that *stop*
//!   at `v`.
//! * Every vertex keeps an inverted index of the walks that visit it. When
//!   an edge `(u, v)` is inserted or deleted, the transition distribution
//!   at `u` changes, so every walk visiting `u` is re-simulated from its
//!   first visit to `u` (a fresh suffix is distributionally exact on the
//!   new graph; Bahmani et al. show only `O(w·log k / k)`-ish walks are
//!   touched per update in expectation).
//! * Re-simulation is parallelized across affected walks with rayon —
//!   matching the paper's setup, which parallelized this baseline with
//!   CilkPlus to keep the comparison fair.
//!
//! The inverted index uses **lazy deletion**: stale entries are filtered on
//! read against the walk's current trace and periodically compacted. This
//! mirrors the paper's observation that "the incremental maintenance of
//! random walk samples needs to track some auxiliary data structures …
//! these auxiliary data structures are large and the maintenance incurs a
//! huge cost" — the cost is the point of the comparison.
//!
//! Note on semantics: this engine estimates the *forward* endpoint
//! distribution from the source (walks stop at dangling vertices), which is
//! the quantity [10] maintains. The throughput comparison with the
//! local-update engines is about *maintenance cost per update*, not about
//! agreeing on the same vector; see `DESIGN.md`.

pub mod walks;

pub use walks::{endpoint_distribution, MonteCarloPpr};

use dppr_core::{BatchStats, CounterSnapshot, DynamicPprEngine, PprConfig};
use dppr_graph::{DynamicGraph, EdgeUpdate, VertexId};
use std::time::Instant;

/// [`DynamicPprEngine`] adapter for [`MonteCarloPpr`].
pub struct MonteCarloEngine {
    cfg: PprConfig,
    inner: MonteCarloPpr,
    restores: u64,
    batches_seen: u64,
}

impl MonteCarloEngine {
    /// Creates an engine maintaining `num_walks` walks. The paper sets
    /// `w = 6·|V|`; anything smaller trades accuracy for speed.
    pub fn new(cfg: PprConfig, num_walks: usize, seed: u64) -> Self {
        MonteCarloEngine {
            cfg,
            inner: MonteCarloPpr::new(cfg.source, cfg.alpha, num_walks, seed),
            restores: 0,
            batches_seen: 0,
        }
    }

    /// The underlying walk store.
    pub fn walks(&self) -> &MonteCarloPpr {
        &self.inner
    }
}

impl DynamicPprEngine for MonteCarloEngine {
    fn name(&self) -> String {
        "Monte-Carlo".into()
    }

    fn config(&self) -> &PprConfig {
        &self.cfg
    }

    fn apply_batch(&mut self, g: &mut DynamicGraph, batch: &[EdgeUpdate]) -> BatchStats {
        let start = Instant::now();
        self.batches_seen += 1;
        let mut applied = 0usize;
        if self.batches_seen == 1 {
            // Bootstrap batch: build the graph, then simulate all walks
            // once on the finished topology (offline initialization), like
            // [10] does before switching to incremental maintenance.
            for &upd in batch {
                if g.apply(upd) {
                    applied += 1;
                }
            }
            self.inner.rebuild(g);
            return BatchStats {
                latency: start.elapsed(),
                applied,
                counters: CounterSnapshot { batches: 1, ..Default::default() },
            };
        }
        for &upd in batch {
            // Like [10], Monte-Carlo synchronizes per update: the walk
            // index must reflect each graph change before the next.
            if g.apply(upd) {
                applied += 1;
                self.restores += 1;
                self.inner.on_update(g, upd.src);
            }
        }
        BatchStats {
            latency: start.elapsed(),
            applied,
            counters: CounterSnapshot {
                restore_ops: applied as u64,
                batches: 1,
                ..Default::default()
            },
        }
    }

    fn estimate(&self, v: VertexId) -> f64 {
        self.inner.estimate(v)
    }

    fn estimates(&self) -> Vec<f64> {
        self.inner.estimates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_graph::generators::erdos_renyi;

    #[test]
    fn engine_tracks_endpoint_distribution() {
        let cfg = PprConfig::new(0, 0.2, 0.05);
        let mut eng = MonteCarloEngine::new(cfg, 60_000, 7);
        let mut g = DynamicGraph::new();
        let batch: Vec<EdgeUpdate> = erdos_renyi(30, 200, 3)
            .into_iter()
            .map(|(u, v)| EdgeUpdate::insert(u, v))
            .collect();
        let stats = eng.apply_batch(&mut g, &batch);
        assert_eq!(stats.applied, 200);
        let truth = endpoint_distribution(&g, 0, 0.2, 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            let err = (eng.estimate(v) - truth[v as usize]).abs();
            assert!(err < 0.02, "vertex {v}: MC {} vs exact {}", eng.estimate(v), truth[v as usize]);
        }
    }

    #[test]
    fn deletions_update_walks() {
        let cfg = PprConfig::new(0, 0.3, 0.05);
        let mut eng = MonteCarloEngine::new(cfg, 40_000, 11);
        let mut g = DynamicGraph::new();
        let edges = erdos_renyi(20, 120, 9);
        let ins: Vec<EdgeUpdate> =
            edges.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
        eng.apply_batch(&mut g, &ins);
        let del: Vec<EdgeUpdate> = edges[..60]
            .iter()
            .map(|&(u, v)| EdgeUpdate::delete(u, v))
            .collect();
        eng.apply_batch(&mut g, &del);
        let truth = endpoint_distribution(&g, 0, 0.3, 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            let err = (eng.estimate(v) - truth[v as usize]).abs();
            assert!(err < 0.025, "vertex {v} after deletions: err {err}");
        }
    }
}
