//! The mutable directed graph all engines run on.
//!
//! `DynamicGraph` maintains *both* adjacency directions because the local
//! push of the paper walks **in-neighbors** (`Nin(u)` in Algorithms 2–4)
//! while `RestoreInvariant` and the random-walk baseline need out-degrees and
//! out-neighbors.
//!
//! # Storage layout: the adjacency pool
//!
//! Each direction is an [`AdjPool`]: one contiguous arena of `VertexId`
//! slots holding a `(offset, len, capacity)` span per vertex. Neighbor
//! iteration is a single flat-slice read — no per-vertex heap allocation,
//! no double indirection, and spans touched together tend to sit together,
//! which is what the push kernels' memory behaviour lives on. Insertion
//! appends into the span's slack and is amortized O(1): a full span is
//! relocated to the end of the arena with doubled capacity (the old slots
//! become garbage) and the arena is compacted in O(n + m) once garbage
//! slots outnumber live ones. Deletion is O(deg) via `swap_remove`, the standard
//! trade-off for streaming graph stores (cf. STINGER [14]).
//!
//! # Degree-adaptive duplicate detection
//!
//! The paper's graphs are simple, so `insert_edge` must reject duplicates.
//! A linear membership scan is fastest below a small degree threshold but
//! makes ingest quadratic on power-law hubs; above the threshold the graph
//! keeps a per-hub hash set of out-neighbors, making hub membership O(1).
//!
//! # Maintained aggregates
//!
//! * `inv_dout[u] = 1 / dout(u)` (0 for dangling vertices), updated on
//!   every insert/delete. This array is the **single source of truth** for
//!   `1/dout` in the push kernels: they multiply by
//!   [`DynamicGraph::inv_out_degree`] instead of dividing per edge.
//! * `active` — the number of vertices with non-zero (in+out) degree (the
//!   paper's `|V^t|`), maintained incrementally so
//!   [`DynamicGraph::active_vertices`] is O(1) instead of an O(n) scan.

use crate::types::{EdgeOp, EdgeUpdate, VertexId};
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// Out-degree above which a vertex gets a hash-set membership index for
/// duplicate detection. Below it, a linear scan of the (cache-resident)
/// span is cheaper than hashing.
pub const DUP_THRESHOLD: usize = 32;

/// Multiply-xor hasher (FxHash-style) for the hub membership sets. The
/// std default (SipHash) costs more per lookup than the linear scan it is
/// supposed to replace at moderate degrees; vertex ids need no
/// HashDoS-resistant hashing.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastIdHasher(u64);

impl FastIdHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FastIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FastBuild = BuildHasherDefault<FastIdHasher>;
type FastSet = HashSet<VertexId, FastBuild>;

/// Sentinel in `hub_slot` for "no membership set".
const NO_HUB: u32 = u32::MAX;

/// Observability snapshot of the adjacency-pool substrate
/// ([`DynamicGraph::substrate_stats`]): arena occupancy and how many
/// vertices run on the hash-membership (hub) path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstrateStats {
    /// Total arena slots across both directions (live + slack + garbage).
    pub arena_slots: usize,
    /// Live neighbor slots: `2·m` (each edge occupies one out- and one
    /// in-slot).
    pub live_slots: usize,
    /// Garbage slots abandoned by span relocation, awaiting compaction.
    pub dead_slots: usize,
    /// Vertices promoted to hash-set duplicate detection.
    pub hub_vertices: usize,
    /// The promotion threshold in effect.
    pub dup_threshold: usize,
}

impl SubstrateStats {
    /// Live fraction of the arena: `live_slots / arena_slots` (1.0 for
    /// an empty arena, so a fresh graph reads as fully utilized rather
    /// than NaN).
    pub fn utilization(&self) -> f64 {
        if self.arena_slots == 0 {
            1.0
        } else {
            self.live_slots as f64 / self.arena_slots as f64
        }
    }
}

/// One adjacency direction: per-vertex spans in a shared flat arena with
/// amortized-doubling slack.
#[derive(Debug, Clone, Default)]
struct AdjPool {
    /// The arena. Slots outside live spans are garbage (relocation leaves
    /// the old copy behind) or slack (allocated but unused capacity).
    data: Vec<VertexId>,
    /// Span start per vertex.
    off: Vec<usize>,
    /// Live neighbors per vertex.
    len: Vec<u32>,
    /// Allocated slots per vertex (`len ≤ cap`).
    cap: Vec<u32>,
    /// Garbage slots abandoned by relocations; drives compaction.
    dead: usize,
    /// Total live slots (`Σ len`), maintained so the compaction trigger
    /// can compare garbage against live data in O(1).
    live: usize,
}

impl AdjPool {
    fn num_vertices(&self) -> usize {
        self.off.len()
    }

    fn ensure(&mut self, n: usize) {
        if self.off.len() < n {
            self.off.resize(n, 0);
            self.len.resize(n, 0);
            self.cap.resize(n, 0);
        }
    }

    #[inline]
    fn degree(&self, u: usize) -> usize {
        self.len.get(u).map_or(0, |&l| l as usize)
    }

    #[inline]
    fn neighbors(&self, u: usize) -> &[VertexId] {
        match self.len.get(u) {
            Some(&l) => &self.data[self.off[u]..self.off[u] + l as usize],
            None => &[],
        }
    }

    /// Appends `v` to `u`'s span, growing it on overflow. Amortized O(1).
    #[inline]
    fn push(&mut self, u: usize, v: VertexId) {
        if self.len[u] == self.cap[u] {
            // Compact once garbage outnumbers live data (with a floor so
            // tiny graphs never churn), and do it BEFORE growing `u`'s
            // span: compaction resets empty spans to zero capacity, so
            // compacting after the allocation would throw the fresh span
            // away and the write below would land out of bounds.
            // (Comparing `dead` against the arena length instead of `live`
            // would be wrong: every relocation grows the arena by at least
            // twice the garbage it creates, so such a trigger never fires.)
            if self.dead > self.live.max(1024) {
                self.compact();
            }
            // Compaction leaves non-empty spans with free slots; grow only
            // if the span is still full (or was empty all along).
            if self.len[u] == self.cap[u] {
                self.grow(u);
            }
        }
        let end = self.off[u] + self.len[u] as usize;
        self.data[end] = v;
        self.len[u] += 1;
        self.live += 1;
    }

    /// Doubles `u`'s span capacity: in place when the span already sits at
    /// the arena tail (no copy, no garbage — the common case for the
    /// hottest hub), otherwise by relocating it to the end of the arena
    /// and abandoning the old slots.
    #[cold]
    fn grow(&mut self, u: usize) {
        let old_off = self.off[u];
        let old_cap = self.cap[u] as usize;
        let live = self.len[u] as usize;
        let new_cap = (old_cap * 2).max(4);
        if old_cap > 0 && old_off + old_cap == self.data.len() {
            self.data.resize(old_off + new_cap, 0);
            self.cap[u] = new_cap as u32;
            return;
        }
        let new_off = self.data.len();
        self.data.reserve(new_cap);
        self.data.extend_from_within(old_off..old_off + live);
        self.data.resize(new_off + new_cap, 0);
        self.off[u] = new_off;
        self.cap[u] = new_cap as u32;
        self.dead += old_cap;
    }

    /// Rebuilds the arena in vertex order, dropping garbage and resetting
    /// each span's slack to the next power of two above its length.
    fn compact(&mut self) {
        let total: usize = self
            .len
            .iter()
            .map(|&l| Self::compact_cap(l as usize))
            .sum();
        let mut data = Vec::with_capacity(total);
        for u in 0..self.off.len() {
            let live = self.len[u] as usize;
            let cap = Self::compact_cap(live);
            let off = data.len();
            data.extend_from_slice(&self.data[self.off[u]..self.off[u] + live]);
            data.resize(off + cap, 0);
            self.off[u] = off;
            self.cap[u] = cap as u32;
        }
        self.data = data;
        self.dead = 0;
    }

    /// Post-compaction capacity: at least one free slot so the next push
    /// does not immediately relocate again.
    fn compact_cap(live: usize) -> usize {
        if live == 0 {
            0
        } else {
            (live + 1).next_power_of_two().max(4)
        }
    }

    /// Removes the neighbor at `pos` within `u`'s span (order not
    /// preserved).
    #[inline]
    fn swap_remove(&mut self, u: usize, pos: usize) {
        let off = self.off[u];
        let last = off + self.len[u] as usize - 1;
        self.data.swap(off + pos, last);
        self.len[u] -= 1;
        self.live -= 1;
    }

    /// Internal structural validation, used by `check_consistency`.
    fn validate(&self) -> Result<(), String> {
        if self.off.len() != self.len.len() || self.off.len() != self.cap.len() {
            return Err("span array length mismatch".into());
        }
        for u in 0..self.off.len() {
            if self.len[u] > self.cap[u] {
                return Err(format!("vertex {u}: len {} > cap {}", self.len[u], self.cap[u]));
            }
            if self.off[u] + self.cap[u] as usize > self.data.len() {
                return Err(format!("vertex {u}: span exceeds arena"));
            }
        }
        let live: usize = self.len.iter().map(|&l| l as usize).sum();
        if live != self.live {
            return Err(format!("live counter {} != recount {live}", self.live));
        }
        Ok(())
    }
}

/// An in-memory directed graph supporting the dynamic update model of §2.2.
///
/// Vertices are dense `u32` ids `0..num_vertices()`. Inserting an edge whose
/// endpoint exceeds the current vertex count grows the vertex set (the
/// paper: "an edge insertion may introduce new vertices"); deleting an edge
/// never shrinks ids, but [`DynamicGraph::active_vertices`] reports how many
/// vertices currently have non-zero degree (the paper's `|V^t|` accounting).
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    out: AdjPool,
    inn: AdjPool,
    num_edges: usize,
    /// Vertices with non-zero (in+out) degree, maintained incrementally.
    active: usize,
    /// `1 / dout(u)`, or 0 when `dout(u) = 0`. See the module docs.
    inv_dout: Vec<f64>,
    /// Per-vertex index into `hub_sets`, or [`NO_HUB`]. A plain array so
    /// the per-insert "is this a hub?" probe is one load, not a hash map
    /// lookup.
    hub_slot: Vec<u32>,
    /// Hash membership indexes for vertices whose out-degree reached
    /// `dup_threshold` (power-law hubs). Sets are kept once created.
    hub_sets: Vec<FastSet>,
    /// Degree at which a vertex is promoted to hash membership.
    dup_threshold: usize,
}

impl Default for DynamicGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicGraph {
    /// Creates an empty graph with no vertices.
    pub fn new() -> Self {
        Self::with_dup_threshold(DUP_THRESHOLD)
    }

    /// Creates an empty graph with a custom hub-promotion threshold.
    /// Primarily for tests (a tiny threshold exercises the hub path on
    /// small random graphs) and benchmarks.
    pub fn with_dup_threshold(dup_threshold: usize) -> Self {
        DynamicGraph {
            out: AdjPool::default(),
            inn: AdjPool::default(),
            num_edges: 0,
            active: 0,
            inv_dout: Vec::new(),
            hub_slot: Vec::new(),
            hub_sets: Vec::new(),
            dup_threshold,
        }
    }

    /// Test/bench-only: a graph that always uses the pre-pool linear
    /// membership scan for duplicate detection, regardless of degree.
    /// Keeps the old-style O(deg)-per-insert ingest path measurable (see
    /// the `graph_ingest` benchmark); not intended for production use.
    pub fn new_linear_scan() -> Self {
        Self::with_dup_threshold(usize::MAX)
    }

    /// Creates an empty graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        let mut g = DynamicGraph::new();
        g.ensure_capacity(n);
        g
    }

    /// Builds a graph from a list of directed edges, inserting each with
    /// [`DynamicGraph::insert_edge`] (duplicates and self-loops are skipped).
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = DynamicGraph::new();
        for (u, v) in edges {
            g.insert_edge(u, v);
        }
        g
    }

    fn ensure_capacity(&mut self, n: usize) {
        self.out.ensure(n);
        self.inn.ensure(n);
        if self.inv_dout.len() < n {
            self.inv_dout.resize(n, 0.0);
            self.hub_slot.resize(n, NO_HUB);
        }
    }

    /// The hub membership set for `u`, if promoted.
    #[inline]
    fn hub_set(&self, u: usize) -> Option<&FastSet> {
        match self.hub_slot.get(u) {
            Some(&s) if s != NO_HUB => Some(&self.hub_sets[s as usize]),
            _ => None,
        }
    }

    /// Number of vertex ids allocated (isolated vertices included).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of vertices with non-zero (in+out) degree. O(1): the count
    /// is maintained across updates.
    #[inline]
    pub fn active_vertices(&self) -> usize {
        self.active
    }

    /// Average out-degree `d = m/n` over allocated vertices (the `d` of
    /// Theorem 1). Returns 0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_vertices() as f64
        }
    }

    /// Grows the vertex set so `v` is a valid id.
    #[inline]
    pub fn ensure_vertex(&mut self, v: VertexId) {
        let need = v as usize + 1;
        if need > self.num_vertices() {
            self.ensure_capacity(need);
        }
    }

    /// Out-degree `dout(u)`; zero for ids outside the current vertex set.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out.degree(u as usize)
    }

    /// `1 / dout(u)` as maintained by the graph (0 when `dout(u) = 0` or
    /// `u` is outside the vertex set). The push kernels multiply by this
    /// instead of dividing per edge; it is recomputed — not incrementally
    /// adjusted — on every degree change, so it is always exactly
    /// `1.0 / dout(u) as f64`.
    #[inline]
    pub fn inv_out_degree(&self, u: VertexId) -> f64 {
        self.inv_dout.get(u as usize).copied().unwrap_or(0.0)
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.inn.degree(u as usize)
    }

    /// The out-neighbor set `Nout(u)` (unsorted) — one flat-slice read.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.out.neighbors(u as usize)
    }

    /// The in-neighbor set `Nin(u)` (unsorted) — the direction the local
    /// push propagates residuals along. One flat-slice read.
    #[inline]
    pub fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.inn.neighbors(u as usize)
    }

    /// Whether the directed edge `u → v` is present. O(dout(u)) below the
    /// duplicate-detection threshold, O(1) expected above it.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if let Some(set) = self.hub_set(u as usize) {
            return set.contains(&v);
        }
        self.out_neighbors(u).contains(&v)
    }

    #[inline]
    fn total_degree(&self, u: usize) -> usize {
        self.out.degree(u) + self.inn.degree(u)
    }

    /// Inserts the directed edge `u → v`. Returns `false` (and leaves the
    /// graph unchanged) for self-loops and already-present edges — the
    /// paper's graphs are simple. Amortized O(1), including on hubs
    /// (degree-adaptive duplicate detection).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.insert_edge_unchecked(u, v);
        true
    }

    /// Inserts `u → v` without the duplicate check. Safe to use when the
    /// caller guarantees uniqueness (e.g. a random edge permutation, where
    /// each edge occurs once); produces a multigraph otherwise.
    #[inline]
    pub fn insert_edge_unchecked(&mut self, u: VertexId, v: VertexId) {
        self.ensure_vertex(u.max(v));
        let (ui, vi) = (u as usize, v as usize);
        if self.total_degree(ui) == 0 {
            self.active += 1;
        }
        if vi != ui && self.total_degree(vi) == 0 {
            self.active += 1;
        }
        self.out.push(ui, v);
        self.inn.push(vi, u);
        self.num_edges += 1;
        let dout = self.out.len[ui] as usize;
        self.inv_dout[ui] = 1.0 / dout as f64;
        let slot = self.hub_slot[ui];
        if slot != NO_HUB {
            self.hub_sets[slot as usize].insert(v);
        } else if dout >= self.dup_threshold {
            // Promotion: one O(deg) pass builds the membership index, paid
            // once per hub (amortized into the threshold's worth of scans
            // already performed).
            let set: FastSet = self.out.neighbors(ui).iter().copied().collect();
            self.hub_slot[ui] = self.hub_sets.len() as u32;
            self.hub_sets.push(set);
        }
    }

    /// Deletes the directed edge `u → v`. Returns `false` if absent.
    /// Adjacency order is not preserved (`swap_remove`). O(deg).
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let ui = u as usize;
        if ui >= self.num_vertices() {
            return false;
        }
        // Hubs answer the absence case in O(1).
        if let Some(set) = self.hub_set(ui) {
            if !set.contains(&v) {
                return false;
            }
        }
        let Some(pos) = self.out.neighbors(ui).iter().position(|&x| x == v) else {
            return false;
        };
        self.out.swap_remove(ui, pos);
        let vi = v as usize;
        let pos_in = self
            .inn
            .neighbors(vi)
            .iter()
            .position(|&x| x == u)
            .expect("in/out adjacency desynchronized");
        self.inn.swap_remove(vi, pos_in);
        self.num_edges -= 1;
        let dout = self.out.len[ui] as usize;
        self.inv_dout[ui] = if dout == 0 { 0.0 } else { 1.0 / dout as f64 };
        let slot = self.hub_slot[ui];
        if slot != NO_HUB {
            // The graph is simple (duplicates only arise from misuse of
            // `insert_edge_unchecked`, which is out of contract), so no
            // copy of the edge can remain — drop membership directly
            // rather than paying a second O(deg) span rescan per delete.
            self.hub_sets[slot as usize].remove(&v);
        }
        if self.total_degree(ui) == 0 {
            self.active -= 1;
        }
        if vi != ui && self.total_degree(vi) == 0 {
            self.active -= 1;
        }
        true
    }

    /// Applies one [`EdgeUpdate`]; returns whether the graph changed.
    pub fn apply(&mut self, upd: EdgeUpdate) -> bool {
        match upd.op {
            EdgeOp::Insert => self.insert_edge(upd.src, upd.dst),
            EdgeOp::Delete => self.delete_edge(upd.src, upd.dst),
        }
    }

    /// Iterates over all directed edges `(u, v)` in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.out
                .neighbors(u)
                .iter()
                .map(move |&v| (u as VertexId, v))
        })
    }

    /// The ids of the `k` vertices with the largest out-degree, sorted by
    /// descending degree (ties by ascending id). This is how the paper picks
    /// source vertices ("top-10, top-1K and top-1M out-degrees", Table 2).
    ///
    /// O(n + k log k): the degrees are materialized once and the top `k`
    /// selected with `select_nth_unstable_by` instead of sorting all `n`
    /// ids with a comparator that re-derives degrees per comparison.
    pub fn top_out_degree_vertices(&self, k: usize) -> Vec<VertexId> {
        let n = self.num_vertices();
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        let mut keyed: Vec<(usize, VertexId)> = (0..n as VertexId)
            .map(|v| (self.out.degree(v as usize), v))
            .collect();
        let by_degree_desc = |a: &(usize, VertexId), b: &(usize, VertexId)| {
            b.0.cmp(&a.0).then(a.1.cmp(&b.1))
        };
        if k < n {
            keyed.select_nth_unstable_by(k - 1, by_degree_desc);
            keyed.truncate(k);
        }
        keyed.sort_unstable_by(by_degree_desc);
        keyed.into_iter().map(|(_, v)| v).collect()
    }

    /// Introspection of the pool substrate (see [`SubstrateStats`]).
    pub fn substrate_stats(&self) -> SubstrateStats {
        SubstrateStats {
            arena_slots: self.out.data.len() + self.inn.data.len(),
            live_slots: 2 * self.num_edges,
            dead_slots: self.out.dead + self.inn.dead,
            hub_vertices: self.hub_sets.len(),
            dup_threshold: self.dup_threshold,
        }
    }

    /// Checks internal consistency: the two adjacency directions agree,
    /// the edge count matches, the pool spans are structurally valid, the
    /// maintained `inv_dout` / `active_vertices` aggregates match a
    /// recount, and every hub membership set mirrors its span.
    /// O(n + m log m); intended for tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.out.num_vertices() != self.inn.num_vertices() {
            return Err("vertex array length mismatch".into());
        }
        self.out.validate()?;
        self.inn.validate()?;
        if self.inv_dout.len() != self.num_vertices() {
            return Err("inv_dout length mismatch".into());
        }
        let mut fwd: Vec<(VertexId, VertexId)> = self.edges().collect();
        let mut bwd: Vec<(VertexId, VertexId)> = (0..self.num_vertices())
            .flat_map(|v| {
                self.inn
                    .neighbors(v)
                    .iter()
                    .map(move |&u| (u, v as VertexId))
            })
            .collect();
        if fwd.len() != self.num_edges {
            return Err(format!(
                "edge count {} != out-adjacency total {}",
                self.num_edges,
                fwd.len()
            ));
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        if fwd != bwd {
            return Err("in/out adjacency disagree".into());
        }
        let mut active = 0usize;
        for u in 0..self.num_vertices() {
            let dout = self.out.degree(u);
            let expect = if dout == 0 { 0.0 } else { 1.0 / dout as f64 };
            if self.inv_dout[u] != expect {
                return Err(format!(
                    "inv_dout[{u}] = {} but dout = {dout}",
                    self.inv_dout[u]
                ));
            }
            if self.total_degree(u) > 0 {
                active += 1;
            }
            if dout >= self.dup_threshold && self.hub_set(u).is_none() {
                return Err(format!("hub {u} (dout {dout}) has no membership set"));
            }
        }
        if active != self.active {
            return Err(format!(
                "active_vertices counter {} != recount {active}",
                self.active
            ));
        }
        if self.hub_slot.len() != self.num_vertices() {
            return Err("hub_slot length mismatch".into());
        }
        for u in 0..self.num_vertices() {
            if let Some(set) = self.hub_set(u) {
                let span: FastSet = self
                    .out_neighbors(u as VertexId)
                    .iter()
                    .copied()
                    .collect();
                if *set != span {
                    return Err(format!("hub {u} membership set disagrees with span"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DynamicGraph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(7), 0);
        assert_eq!(g.in_degree(7), 0);
        assert_eq!(g.inv_out_degree(7), 0.0);
        assert!(g.out_neighbors(7).is_empty());
        assert!(!g.has_edge(0, 1));
        g.check_consistency().unwrap();
    }

    #[test]
    fn insert_grows_vertex_set() {
        let mut g = DynamicGraph::new();
        assert!(g.insert_edge(2, 5));
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(5), 1);
        assert_eq!(g.out_neighbors(2), &[5]);
        assert_eq!(g.in_neighbors(5), &[2]);
        g.check_consistency().unwrap();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut g = DynamicGraph::new();
        assert!(g.insert_edge(0, 1));
        assert!(!g.insert_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DynamicGraph::new();
        assert!(!g.insert_edge(3, 3));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn delete_roundtrip() {
        let mut g = DynamicGraph::from_edges([(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.delete_edge(0, 1));
        assert!(!g.delete_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(1), 0);
        assert!(g.has_edge(0, 2));
        g.check_consistency().unwrap();
    }

    #[test]
    fn delete_absent_edge_is_noop() {
        let mut g = DynamicGraph::from_edges([(0, 1)]);
        assert!(!g.delete_edge(1, 0));
        assert!(!g.delete_edge(9, 9));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn apply_updates() {
        let mut g = DynamicGraph::new();
        assert!(g.apply(EdgeUpdate::insert(0, 1)));
        assert!(g.apply(EdgeUpdate::insert(1, 2)));
        assert!(g.apply(EdgeUpdate::delete(0, 1)));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn active_vertices_counts_nonzero_degree() {
        let mut g = DynamicGraph::with_vertices(10);
        assert_eq!(g.active_vertices(), 0);
        g.insert_edge(0, 1);
        g.insert_edge(2, 1);
        assert_eq!(g.active_vertices(), 3);
        g.delete_edge(0, 1);
        assert_eq!(g.active_vertices(), 2);
        g.delete_edge(2, 1);
        assert_eq!(g.active_vertices(), 0);
        g.check_consistency().unwrap();
    }

    #[test]
    fn inv_dout_tracks_degree_exactly() {
        let mut g = DynamicGraph::new();
        for v in 1..=5u32 {
            g.insert_edge(0, v);
            assert_eq!(g.inv_out_degree(0), 1.0 / v as f64);
        }
        g.delete_edge(0, 3);
        assert_eq!(g.inv_out_degree(0), 0.25);
        for v in [1u32, 2, 4, 5] {
            g.delete_edge(0, v);
        }
        assert_eq!(g.inv_out_degree(0), 0.0);
        g.check_consistency().unwrap();
    }

    #[test]
    fn top_out_degree_ordering() {
        let mut g = DynamicGraph::new();
        for v in 1..=4 {
            g.insert_edge(0, v); // dout(0)=4
        }
        for v in [0, 2, 3] {
            g.insert_edge(1, v); // dout(1)=3
        }
        g.insert_edge(2, 0); // dout(2)=1
        let top = g.top_out_degree_vertices(2);
        assert_eq!(top, vec![0, 1]);
        let all = g.top_out_degree_vertices(100);
        assert_eq!(all.len(), g.num_vertices());
        assert_eq!(all[0], 0);
        assert!(g.top_out_degree_vertices(0).is_empty());
        // Ties break by ascending id: vertices 3 and 4 both have dout 0.
        let tail = g.top_out_degree_vertices(5);
        assert_eq!(tail, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn edges_iterator_matches_count() {
        let g = DynamicGraph::from_edges([(0, 1), (1, 2), (2, 0), (0, 2)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn average_degree() {
        let g = DynamicGraph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        assert_eq!(DynamicGraph::new().average_degree(), 0.0);
    }

    #[test]
    fn hub_promotion_keeps_membership_exact() {
        // A tiny threshold exercises promotion, hub inserts, hub deletes,
        // and duplicate rejection through the hash path.
        let mut g = DynamicGraph::with_dup_threshold(4);
        for v in 1..=10u32 {
            assert!(g.insert_edge(0, v));
        }
        assert!(!g.insert_edge(0, 7), "hub duplicate must be rejected");
        assert!(g.has_edge(0, 10));
        assert!(!g.has_edge(0, 11));
        assert!(g.delete_edge(0, 7));
        assert!(!g.has_edge(0, 7));
        assert!(!g.delete_edge(0, 7));
        assert!(g.insert_edge(0, 7));
        g.check_consistency().unwrap();
        assert_eq!(g.out_degree(0), 10);
    }

    #[test]
    fn linear_scan_mode_matches_adaptive() {
        let mut a = DynamicGraph::new_linear_scan();
        let mut b = DynamicGraph::with_dup_threshold(2);
        let script: Vec<(u32, u32, bool)> = (0..500)
            .map(|i| {
                let u = (i * 7) % 13;
                let v = (i * 11 + 3) % 13;
                (u, v, i % 5 != 0)
            })
            .collect();
        for (u, v, ins) in script {
            let upd = if ins {
                EdgeUpdate::insert(u, v)
            } else {
                EdgeUpdate::delete(u, v)
            };
            assert_eq!(a.apply(upd), b.apply(upd), "{upd:?}");
        }
        a.check_consistency().unwrap();
        b.check_consistency().unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.active_vertices(), b.active_vertices());
        let mut ea: Vec<_> = a.edges().collect();
        let mut eb: Vec<_> = b.edges().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn pool_relocation_and_compaction_preserve_spans() {
        // Interleave growth across vertices so spans relocate repeatedly
        // and compaction triggers; every span must stay intact.
        let mut g = DynamicGraph::new();
        let n = 64u32;
        for round in 0..40u32 {
            for u in 0..n {
                let v = (u + round + 1) % (n + 8);
                if u != v {
                    g.insert_edge(u, v);
                }
            }
        }
        g.check_consistency().unwrap();
        for u in 0..n {
            for &v in g.out_neighbors(u) {
                assert!(g.in_neighbors(v).contains(&u));
            }
        }
        // Deletions after heavy relocation still resolve.
        let edges: Vec<_> = g.edges().collect();
        for &(u, v) in edges.iter().step_by(3) {
            assert!(g.delete_edge(u, v));
        }
        g.check_consistency().unwrap();
    }

    #[test]
    fn compaction_during_new_vertex_insert_is_safe() {
        // Regression: compaction used to run *after* the growth path had
        // allocated a brand-new (empty) vertex's first span; compaction
        // resets empty spans to zero capacity, so the pending neighbor
        // write landed out of bounds (or inside another vertex's span).
        let mut g = DynamicGraph::new();
        let n = 64u32;
        // Interleaved growth relocates spans repeatedly, building garbage…
        for round in 0..32u32 {
            for u in 0..n {
                g.insert_edge(u, n + round);
            }
        }
        // …then deletions shrink the live mass without touching `dead`…
        for &(u, v) in g.edges().collect::<Vec<_>>().iter() {
            if v > n {
                g.delete_edge(u, v);
            }
        }
        // …so the next allocation (a new vertex id) must compact first
        // and still land its write correctly.
        assert!(g.insert_edge(5000, 5001));
        assert!(g.has_edge(5000, 5001));
        g.check_consistency().unwrap();
    }

    #[test]
    fn compaction_fires_and_bounds_garbage() {
        // Insert-heavy growth across few vertices relocates spans through
        // caps 4, 8, 16, … — garbage from abandoned spans must trigger
        // compaction, keeping dead slots bounded by live ones (plus the
        // small-graph floor) instead of accumulating forever.
        let mut g = DynamicGraph::new();
        let n = 32u32;
        for round in 0..200u32 {
            for u in 0..n {
                let v = n + ((u * 311 + round * 7) % 3000);
                g.insert_edge(u, v);
            }
        }
        let ss = g.substrate_stats();
        assert!(ss.live_slots > 10_000);
        assert!(
            ss.dead_slots <= ss.live_slots.max(2 * 1024),
            "dead {} not bounded by live {}",
            ss.dead_slots,
            ss.live_slots
        );
        g.check_consistency().unwrap();
    }

    #[test]
    fn unchecked_insert_maintains_aggregates() {
        let mut g = DynamicGraph::with_dup_threshold(3);
        for v in 1..=6u32 {
            g.insert_edge_unchecked(0, v);
        }
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.inv_out_degree(0), 1.0 / 6.0);
        assert_eq!(g.active_vertices(), 7);
        assert!(g.has_edge(0, 6));
        g.check_consistency().unwrap();
    }
}
