//! Maintenance of many PPR vectors side by side.
//!
//! §2.1 of the paper notes that the general (non-unit) personalization case
//! "can be reduced to the case with the unit vector scenario … by
//! maintaining multiple PPR vectors with different personalized unit
//! vectors", and the indexing systems it aims to serve (HubPPR [46],
//! distributed exact PPR [18]) maintain vectors for many hub vertices.
//! [`MultiSourcePpr`] does exactly that: one [`PprState`] per source,
//! updated against the same graph, with the per-source pushes themselves
//! running in parallel across sources (each push is independent — they
//! share only the read-only graph).

use crate::config::PprConfig;
use crate::counters::Counters;
use crate::invariant::restore_invariant_with_degree;
use crate::par::{parallel_local_push, ParPushBuffers};
use crate::state::PprState;
use crate::variants::PushVariant;
use dppr_graph::{DynamicGraph, EdgeUpdate, VertexId};
use rayon::prelude::*;

/// A bundle of PPR vectors for several sources over one dynamic graph.
pub struct MultiSourcePpr {
    states: Vec<PprState>,
    bufs: Vec<ParPushBuffers>,
    variant: PushVariant,
    counters: Counters,
    seeds: Vec<VertexId>,
}

impl MultiSourcePpr {
    /// Creates one maintained vector per source, all with the same α and ε.
    pub fn new(sources: &[VertexId], alpha: f64, epsilon: f64, variant: PushVariant) -> Self {
        let states = sources
            .iter()
            .map(|&s| PprState::new(PprConfig::new(s, alpha, epsilon)))
            .collect::<Vec<_>>();
        let bufs = sources.iter().map(|_| ParPushBuffers::new()).collect();
        MultiSourcePpr {
            states,
            bufs,
            variant,
            counters: Counters::new(),
            seeds: Vec::new(),
        }
    }

    /// Number of maintained sources.
    pub fn num_sources(&self) -> usize {
        self.states.len()
    }

    /// The state maintained for the `i`-th source.
    pub fn state(&self, i: usize) -> &PprState {
        &self.states[i]
    }

    /// Cumulative counters across all sources.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Applies a batch: mutates the graph once, then repairs and pushes
    /// every source's vector (sources processed in parallel; each source's
    /// own push uses the sequentially-seeded parallel kernel).
    pub fn apply_batch(&mut self, g: &mut DynamicGraph, batch: &[EdgeUpdate]) -> usize {
        // Graph mutation happens once, recording each update's post-update
        // out-degree (the d_j(u) of Lemma 3) so the invariant repairs can
        // be replayed exactly against every source's state afterwards.
        self.seeds.clear();
        let mut applied: Vec<(EdgeUpdate, usize)> = Vec::with_capacity(batch.len());
        for &upd in batch {
            if g.apply(upd) {
                applied.push((upd, g.out_degree(upd.src)));
                self.seeds.push(upd.src);
            }
        }
        let n = g.num_vertices();
        for st in &mut self.states {
            st.ensure_len(n);
        }
        let g = &*g;
        let seeds = &self.seeds;
        let applied_ref = &applied;
        let variant = self.variant;
        let counters = &self.counters;
        self.states
            .par_iter()
            .zip(self.bufs.par_iter_mut())
            .for_each(|(st, bufs)| {
                for &(upd, dout_after) in applied_ref {
                    restore_invariant_with_degree(st, upd.src, upd.dst, upd.op, dout_after);
                    counters.record_restore();
                }
                parallel_local_push(g, st, variant, seeds, counters, bufs);
            });
        applied.len()
    }

    /// The estimate of `v` w.r.t. the `i`-th source.
    pub fn estimate(&self, i: usize, v: VertexId) -> f64 {
        self.states[i].p(v)
    }

    /// Top-`k` vertices by estimate for the `i`-th source, descending
    /// (ties by ascending id). The workhorse of recommendation queries.
    pub fn top_k(&self, i: usize, k: usize) -> Vec<(VertexId, f64)> {
        top_k_of(&self.states[i].estimates(), k)
    }
}

/// Top-`k` entries of a score vector, descending (ties by ascending id).
pub fn top_k_of(scores: &[f64], k: usize) -> Vec<(VertexId, f64)> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &VertexId, b: &VertexId| {
        scores[*b as usize]
            .partial_cmp(&scores[*a as usize])
            .unwrap()
            .then(a.cmp(b))
    };
    let mut idx: Vec<VertexId> = (0..scores.len() as VertexId).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_by(cmp);
    idx.into_iter().map(|v| (v, scores[v as usize])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::exact_ppr;
    use crate::invariant::max_invariant_violation;
    use dppr_graph::generators::erdos_renyi;

    #[test]
    fn maintains_every_source_accurately() {
        let sources = [0u32, 3, 7];
        let mut multi = MultiSourcePpr::new(&sources, 0.2, 1e-3, PushVariant::OPT);
        let mut g = DynamicGraph::new();
        let edges = erdos_renyi(40, 400, 13);
        for chunk in edges.chunks(80) {
            let batch: Vec<EdgeUpdate> =
                chunk.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
            multi.apply_batch(&mut g, &batch);
        }
        for (i, &s) in sources.iter().enumerate() {
            let truth = exact_ppr(&g, s, 0.2, 1e-12);
            assert!(max_invariant_violation(&g, multi.state(i)) < 1e-9);
            for v in 0..g.num_vertices() as VertexId {
                assert!(
                    (multi.estimate(i, v) - truth[v as usize]).abs() <= 1e-3 + 1e-9,
                    "source {s} vertex {v}"
                );
            }
        }
    }

    #[test]
    fn deletions_propagate_to_all_sources() {
        let sources = [0u32, 1];
        let mut multi = MultiSourcePpr::new(&sources, 0.3, 1e-3, PushVariant::OPT);
        let mut g = DynamicGraph::new();
        let edges = erdos_renyi(20, 150, 5);
        let ins: Vec<EdgeUpdate> =
            edges.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
        multi.apply_batch(&mut g, &ins);
        let del: Vec<EdgeUpdate> = edges[..50]
            .iter()
            .map(|&(u, v)| EdgeUpdate::delete(u, v))
            .collect();
        let applied = multi.apply_batch(&mut g, &del);
        assert_eq!(applied, 50);
        for (i, &s) in sources.iter().enumerate() {
            let truth = exact_ppr(&g, s, 0.3, 1e-12);
            for v in 0..g.num_vertices() as VertexId {
                assert!((multi.estimate(i, v) - truth[v as usize]).abs() <= 1e-3 + 1e-9);
            }
        }
    }

    #[test]
    fn top_k_ordering() {
        let scores = [0.1, 0.5, 0.3, 0.5, 0.0];
        let top = top_k_of(&scores, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (1, 0.5)); // tie broken by id
        assert_eq!(top[1], (3, 0.5));
        assert_eq!(top[2], (2, 0.3));
        assert_eq!(top_k_of(&scores, 0), vec![]);
        assert_eq!(top_k_of(&[], 5), vec![]);
    }
}
