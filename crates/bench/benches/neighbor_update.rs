//! Ablation for §3.1 footnote 2: atomic adds vs the sorting-and-aggregate
//! method for transferring residuals to neighbors.
//!
//! The paper: "this sorting-and-aggregate method incurs significant
//! overheads for large frontiers … most graph processing systems adopt
//! atomic operations". This bench reproduces that comparison on a real
//! propagation round over a BA graph.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dppr_core::AtomicF64;
use dppr_graph::generators::{barabasi_albert, undirected_to_directed};
use dppr_graph::DynamicGraph;
use rayon::prelude::*;

fn fixture() -> (DynamicGraph, Vec<(u32, f64)>, Vec<AtomicF64>) {
    let g = DynamicGraph::from_edges(undirected_to_directed(&barabasi_albert(
        20_000, 6, 17,
    )));
    // A large frontier: every 4th vertex pushes one unit.
    let frontier: Vec<(u32, f64)> = (0..g.num_vertices() as u32)
        .step_by(4)
        .map(|u| (u, 1.0))
        .collect();
    let residuals: Vec<AtomicF64> = (0..g.num_vertices()).map(|_| AtomicF64::new(0.0)).collect();
    (g, frontier, residuals)
}

fn bench_neighbor_update(c: &mut Criterion) {
    let (g, frontier, residuals) = fixture();
    let alpha = 0.15;
    let mut group = c.benchmark_group("neighbor_update");
    group.sample_size(10);

    group.bench_function("atomic_adds", |b| {
        b.iter_batched(
            || residuals.iter().for_each(|r| r.store(0.0)),
            |_| {
                frontier.par_iter().with_min_len(64).for_each(|&(u, w)| {
                    let scaled = (1.0 - alpha) * w;
                    for &v in g.in_neighbors(u) {
                        residuals[v as usize]
                            .fetch_add(scaled * g.inv_out_degree(v));
                    }
                });
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("sort_aggregate", |b| {
        b.iter_batched(
            || residuals.iter().for_each(|r| r.store(0.0)),
            |_| {
                // Phase 1: materialize all (target, delta) pairs.
                let mut pairs: Vec<(u32, f64)> = frontier
                    .par_iter()
                    .with_min_len(64)
                    .fold(Vec::new, |mut acc, &(u, w)| {
                        let scaled = (1.0 - alpha) * w;
                        for &v in g.in_neighbors(u) {
                            acc.push((v, scaled * g.inv_out_degree(v)));
                        }
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                // Phase 2: parallel sort by target.
                pairs.par_sort_unstable_by_key(|&(v, _)| v);
                // Phase 3: segmented reduce + contention-free writes.
                let mut i = 0;
                while i < pairs.len() {
                    let v = pairs[i].0;
                    let mut sum = 0.0;
                    while i < pairs.len() && pairs[i].0 == v {
                        sum += pairs[i].1;
                        i += 1;
                    }
                    residuals[v as usize].store(residuals[v as usize].load() + sum);
                }
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_neighbor_update);
criterion_main!(benches);
