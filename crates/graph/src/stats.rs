//! Degree-distribution statistics.
//!
//! Used to validate that the synthetic presets reproduce the *shape* of
//! the paper's SNAP graphs (heavy-tailed degree distributions — the
//! property driving frontier growth, parallel loss, and duplicate
//! generation), and by the CLI's `info` subcommand.

use crate::dynamic::DynamicGraph;
use crate::types::VertexId;

/// Summary statistics of an out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices considered.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Maximum out-degree.
    pub max: usize,
    /// Median out-degree.
    pub p50: usize,
    /// 99th-percentile out-degree.
    pub p99: usize,
    /// Log-binned histogram: `(upper_bound, count)` for bins
    /// (0,1], (1,2], (2,4], (4,8], …
    pub log_histogram: Vec<(usize, usize)>,
    /// Hill estimator of the power-law tail exponent over the top decile
    /// (`None` when the graph is too small or degenerate). BA graphs give
    /// ≈ 2–3; ER graphs give much larger values (no heavy tail).
    pub tail_exponent: Option<f64>,
}

/// Computes out-degree statistics for `g`.
pub fn degree_stats(g: &DynamicGraph) -> DegreeStats {
    let n = g.num_vertices();
    let mut degrees: Vec<usize> = (0..n as VertexId).map(|v| g.out_degree(v)).collect();
    degrees.sort_unstable();
    let max = degrees.last().copied().unwrap_or(0);
    let pick = |q: f64| -> usize {
        if degrees.is_empty() {
            0
        } else {
            degrees[((degrees.len() - 1) as f64 * q) as usize]
        }
    };

    let mut log_histogram = Vec::new();
    let mut bound = 1usize;
    loop {
        let lo = bound / 2;
        let count = degrees.iter().filter(|&&d| d > lo && d <= bound).count();
        if count > 0 {
            log_histogram.push((bound, count));
        }
        if bound >= max.max(1) {
            break;
        }
        bound *= 2;
    }

    DegreeStats {
        vertices: n,
        edges: g.num_edges(),
        mean: if n == 0 { 0.0 } else { g.num_edges() as f64 / n as f64 },
        max,
        p50: pick(0.5),
        p99: pick(0.99),
        log_histogram,
        tail_exponent: hill_estimator(&degrees),
    }
}

/// Hill estimator of the tail index over the top 10% of non-zero degrees:
/// `α̂ = 1 + k / Σ ln(d_i / d_min)`.
fn hill_estimator(sorted_degrees: &[usize]) -> Option<f64> {
    let nonzero: Vec<f64> = sorted_degrees
        .iter()
        .filter(|&&d| d > 0)
        .map(|&d| d as f64)
        .collect();
    if nonzero.len() < 50 {
        return None;
    }
    let k = (nonzero.len() / 10).max(10);
    let tail = &nonzero[nonzero.len() - k..];
    let d_min = tail[0];
    if d_min <= 0.0 || tail.last().copied() == Some(d_min) {
        return None; // degenerate (uniform) tail
    }
    let log_sum: f64 = tail.iter().map(|&d| (d / d_min).ln()).sum();
    if log_sum <= 0.0 {
        None
    } else {
        Some(1.0 + k as f64 / log_sum)
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "vertices\t{}", self.vertices)?;
        writeln!(f, "arcs\t{}", self.edges)?;
        writeln!(f, "mean_out_degree\t{:.3}", self.mean)?;
        writeln!(f, "max_out_degree\t{}", self.max)?;
        writeln!(f, "p50_out_degree\t{}", self.p50)?;
        writeln!(f, "p99_out_degree\t{}", self.p99)?;
        if let Some(a) = self.tail_exponent {
            writeln!(f, "tail_exponent\t{a:.2}")?;
        }
        writeln!(f, "degree_histogram (log bins)")?;
        for &(bound, count) in &self.log_histogram {
            writeln!(f, "  deg ({},{}]\t{}", bound / 2, bound, count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, erdos_renyi, undirected_to_directed};

    #[test]
    fn empty_graph() {
        let s = degree_stats(&DynamicGraph::new());
        assert_eq!(s.vertices, 0);
        assert_eq!(s.max, 0);
        assert!(s.tail_exponent.is_none());
    }

    #[test]
    fn histogram_partitions_nonzero_degrees() {
        let g = DynamicGraph::from_edges(erdos_renyi(200, 2_000, 3));
        let s = degree_stats(&g);
        let hist_total: usize = s.log_histogram.iter().map(|&(_, c)| c).sum();
        let nonzero = (0..200u32).filter(|&v| g.out_degree(v) > 0).count();
        assert_eq!(hist_total, nonzero);
        // Bounds are increasing powers of two.
        for w in s.log_histogram.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn ba_tail_is_heavier_than_er() {
        let ba = DynamicGraph::from_edges(undirected_to_directed(&barabasi_albert(
            3_000, 4, 7,
        )));
        let ba_stats = degree_stats(&ba);
        let er = DynamicGraph::from_edges(erdos_renyi(3_000, ba.num_edges(), 7));
        let er_stats = degree_stats(&er);
        // Similar mean degree by construction…
        assert!((ba_stats.mean - er_stats.mean).abs() / er_stats.mean < 0.1);
        // …but the BA max degree dwarfs ER's, and its tail exponent is in
        // the scale-free band while ER's is much larger (or undefined).
        assert!(ba_stats.max > 3 * er_stats.max);
        let ba_alpha = ba_stats.tail_exponent.expect("BA tail");
        assert!(
            (1.5..4.0).contains(&ba_alpha),
            "BA tail exponent {ba_alpha} outside scale-free band"
        );
        if let Some(er_alpha) = er_stats.tail_exponent {
            assert!(er_alpha > ba_alpha, "ER {er_alpha} vs BA {ba_alpha}");
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let g = DynamicGraph::from_edges(erdos_renyi(500, 3_000, 11));
        let s = degree_stats(&g);
        assert!(s.p50 <= s.p99);
        assert!(s.p99 <= s.max);
        assert!(s.mean > 0.0);
    }
}
