//! The engine line-up of the paper's §5.1, behind one trait.
//!
//! * `CPU-Base` — [`SeqEngine`] with [`UpdateMode::PerUpdate`]: restore the
//!   invariant and run the sequential push after **every single** update
//!   (the state-of-the-art of [49] as the paper benchmarks it).
//! * `CPU-Seq` — [`SeqEngine`] with [`UpdateMode::Batched`]: restore the
//!   invariant for the whole batch, then one sequential push.
//! * `CPU-MT` — [`ParallelEngine`]: batch restore + the parallel push of
//!   Algorithms 3/4, with a configurable [`PushVariant`] and thread count.
//!
//! The Monte-Carlo and Ligra-style baselines implement the same trait from
//! their own crates (`dppr-mc`, `dppr-vc`).

use crate::config::PprConfig;
use crate::counters::{CounterSnapshot, Counters};
use crate::invariant::apply_update;
use crate::par::{parallel_local_push_opts, ParPushBuffers};
use crate::seq::{sequential_local_push, SeqPushBuffers};
use crate::state::PprState;
use crate::variants::PushVariant;
use dppr_graph::{DynamicGraph, EdgeUpdate, VertexId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one [`DynamicPprEngine::apply_batch`] call.
#[derive(Debug, Clone, Copy)]
pub struct BatchStats {
    /// Wall-clock time for the whole batch (restore + push).
    pub latency: Duration,
    /// Updates that actually changed the graph.
    pub applied: usize,
    /// Counter deltas attributable to this batch.
    pub counters: CounterSnapshot,
}

/// A maintained approximate PPR vector that can absorb update batches.
pub trait DynamicPprEngine {
    /// Human-readable engine name (mirrors the paper's legend labels).
    fn name(&self) -> String;

    /// The problem parameters.
    fn config(&self) -> &PprConfig;

    /// Applies one batch of edge updates to `g` *and* to the maintained
    /// PPR vector, leaving the estimate ε-accurate.
    fn apply_batch(&mut self, g: &mut DynamicGraph, batch: &[EdgeUpdate]) -> BatchStats;

    /// The current estimate for one vertex.
    fn estimate(&self, v: VertexId) -> f64;

    /// The full estimate vector.
    fn estimates(&self) -> Vec<f64>;

    /// Cumulative profiling counters (zero if the engine has none).
    fn counters(&self) -> CounterSnapshot {
        CounterSnapshot::default()
    }
}

/// Whether a sequential engine synchronizes per update or per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Restore + push after every single update (`CPU-Base`).
    PerUpdate,
    /// Restore the whole batch, then one push (`CPU-Seq`).
    Batched,
}

/// The sequential local-update engine of Zhang et al. [49].
pub struct SeqEngine {
    state: PprState,
    mode: UpdateMode,
    counters: Counters,
    bufs: SeqPushBuffers,
    seeds: Vec<VertexId>,
}

impl SeqEngine {
    /// Creates an engine for an empty graph.
    pub fn new(cfg: PprConfig, mode: UpdateMode) -> Self {
        SeqEngine {
            state: PprState::new(cfg),
            mode,
            counters: Counters::new(),
            bufs: SeqPushBuffers::new(),
            seeds: Vec::new(),
        }
    }

    /// Direct access to the maintained state.
    pub fn state(&self) -> &PprState {
        &self.state
    }
}

impl DynamicPprEngine for SeqEngine {
    fn name(&self) -> String {
        match self.mode {
            UpdateMode::PerUpdate => "CPU-Base".into(),
            UpdateMode::Batched => "CPU-Seq".into(),
        }
    }

    fn config(&self) -> &PprConfig {
        self.state.config()
    }

    fn apply_batch(&mut self, g: &mut DynamicGraph, batch: &[EdgeUpdate]) -> BatchStats {
        let before = self.counters.snapshot();
        let start = Instant::now();
        let mut applied = 0usize;
        match self.mode {
            UpdateMode::PerUpdate => {
                for &upd in batch {
                    if apply_update(g, &mut self.state, upd, &self.counters) {
                        applied += 1;
                        sequential_local_push(
                            g,
                            &self.state,
                            &[upd.src],
                            &self.counters,
                            &mut self.bufs,
                        );
                    }
                }
            }
            UpdateMode::Batched => {
                self.seeds.clear();
                for &upd in batch {
                    if apply_update(g, &mut self.state, upd, &self.counters) {
                        applied += 1;
                        self.seeds.push(upd.src);
                    }
                }
                let seeds = std::mem::take(&mut self.seeds);
                sequential_local_push(g, &self.state, &seeds, &self.counters, &mut self.bufs);
                self.seeds = seeds;
            }
        }
        self.counters.record_batch();
        BatchStats {
            latency: start.elapsed(),
            applied,
            counters: self.counters.snapshot() - before,
        }
    }

    fn estimate(&self, v: VertexId) -> f64 {
        self.state.p(v)
    }

    fn estimates(&self) -> Vec<f64> {
        self.state.estimates()
    }

    fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }
}

/// The paper's parallel local-update engine (`CPU-MT`).
pub struct ParallelEngine {
    state: PprState,
    variant: PushVariant,
    counters: Counters,
    bufs: ParPushBuffers,
    seeds: Vec<VertexId>,
    pool: Option<Arc<rayon::ThreadPool>>,
    opts: crate::par::PushOpts,
    parallel_restore: bool,
}

impl ParallelEngine {
    /// Creates an engine running on the global rayon pool.
    pub fn new(cfg: PprConfig, variant: PushVariant) -> Self {
        ParallelEngine {
            state: PprState::new(cfg),
            variant,
            counters: Counters::new(),
            bufs: ParPushBuffers::new(),
            seeds: Vec::new(),
            pool: None,
            opts: crate::par::PushOpts::default(),
            parallel_restore: false,
        }
    }

    /// Creates an engine pinned to a dedicated pool of `threads` workers
    /// (the scalability experiment of Figure 10).
    pub fn with_threads(cfg: PprConfig, variant: PushVariant, threads: usize) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon pool");
        let mut e = Self::new(cfg, variant);
        e.pool = Some(Arc::new(pool));
        e
    }

    /// Overrides the push tuning options (granularity ablation).
    pub fn set_opts(&mut self, opts: crate::par::PushOpts) {
        self.opts = opts;
    }

    /// Enables the parallel batch-restore prelude (see
    /// [`crate::invariant::apply_batch_parallel_restore`]). Off by
    /// default — the paper treats invariant repair as a sequential O(k)
    /// step; this is the extension ablated in the `granularity` benches.
    pub fn set_parallel_restore(&mut self, on: bool) {
        self.parallel_restore = on;
    }

    /// The push variant this engine runs.
    pub fn variant(&self) -> PushVariant {
        self.variant
    }

    /// Direct access to the maintained state.
    pub fn state(&self) -> &PprState {
        &self.state
    }
}

impl DynamicPprEngine for ParallelEngine {
    fn name(&self) -> String {
        format!("CPU-MT[{}]", self.variant)
    }

    fn config(&self) -> &PprConfig {
        self.state.config()
    }

    fn apply_batch(&mut self, g: &mut DynamicGraph, batch: &[EdgeUpdate]) -> BatchStats {
        let before = self.counters.snapshot();
        let start = Instant::now();
        // Restore the invariant for the whole batch ("repairing the
        // invariant only takes a constant time" per update, §4). The graph
        // mutation itself is inherently sequential; the repairs optionally
        // run grouped-by-source in parallel.
        self.seeds.clear();
        let applied = if self.parallel_restore {
            crate::invariant::apply_batch_parallel_restore(
                g,
                &mut self.state,
                batch,
                &self.counters,
                &mut self.seeds,
            )
        } else {
            let mut applied = 0usize;
            for &upd in batch {
                if apply_update(g, &mut self.state, upd, &self.counters) {
                    applied += 1;
                    self.seeds.push(upd.src);
                }
            }
            applied
        };
        // One parallel push for the batch.
        let state = &self.state;
        let variant = self.variant;
        let seeds = &self.seeds;
        let counters = &self.counters;
        let bufs = &mut self.bufs;
        let opts = self.opts;
        match &self.pool {
            Some(pool) => pool.install(|| {
                parallel_local_push_opts(g, state, variant, seeds, counters, bufs, opts)
            }),
            None => parallel_local_push_opts(g, state, variant, seeds, counters, bufs, opts),
        }
        self.counters.record_batch();
        BatchStats {
            latency: start.elapsed(),
            applied,
            counters: self.counters.snapshot() - before,
        }
    }

    fn estimate(&self, v: VertexId) -> f64 {
        self.state.p(v)
    }

    fn estimates(&self) -> Vec<f64> {
        self.state.estimates()
    }

    fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::exact_ppr;
    use crate::invariant::max_invariant_violation;
    use dppr_graph::generators::erdos_renyi;

    fn batches(seed: u64) -> Vec<Vec<EdgeUpdate>> {
        let edges = erdos_renyi(60, 600, seed);
        edges
            .chunks(50)
            .map(|c| c.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect())
            .collect()
    }

    fn check_engine(engine: &mut dyn DynamicPprEngine) {
        let mut g = DynamicGraph::new();
        let mut total_applied = 0;
        for b in batches(21) {
            let stats = engine.apply_batch(&mut g, &b);
            total_applied += stats.applied;
        }
        assert_eq!(total_applied, 600);
        let cfg = *engine.config();
        let truth = exact_ppr(&g, cfg.source, cfg.alpha, 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            let err = (engine.estimate(v) - truth[v as usize]).abs();
            assert!(
                err <= cfg.epsilon + 1e-9,
                "{}: vertex {v} error {err} > ε",
                engine.name()
            );
        }
    }

    #[test]
    fn cpu_base_is_epsilon_accurate() {
        let mut e = SeqEngine::new(PprConfig::new(0, 0.2, 1e-3), UpdateMode::PerUpdate);
        check_engine(&mut e);
        assert_eq!(e.name(), "CPU-Base");
    }

    #[test]
    fn cpu_seq_is_epsilon_accurate() {
        let mut e = SeqEngine::new(PprConfig::new(0, 0.2, 1e-3), UpdateMode::Batched);
        check_engine(&mut e);
        assert_eq!(e.name(), "CPU-Seq");
    }

    #[test]
    fn cpu_mt_all_variants_epsilon_accurate() {
        for variant in PushVariant::ALL {
            let mut e = ParallelEngine::new(PprConfig::new(0, 0.2, 1e-3), variant);
            check_engine(&mut e);
        }
    }

    #[test]
    fn dedicated_pool_engine_works() {
        let mut e =
            ParallelEngine::with_threads(PprConfig::new(0, 0.2, 1e-3), PushVariant::OPT, 2);
        check_engine(&mut e);
        assert_eq!(e.name(), "CPU-MT[Opt]");
    }

    #[test]
    fn mixed_insert_delete_batches_keep_invariant() {
        let mut g = DynamicGraph::new();
        let mut e = ParallelEngine::new(PprConfig::new(1, 0.15, 1e-3), PushVariant::OPT);
        let edges = erdos_renyi(50, 400, 3);
        let ins: Vec<EdgeUpdate> =
            edges.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
        e.apply_batch(&mut g, &ins);
        // Delete half of them, in one batch that also inserts new edges.
        let mut batch: Vec<EdgeUpdate> = edges[..200]
            .iter()
            .map(|&(u, v)| EdgeUpdate::delete(u, v))
            .collect();
        batch.extend(
            erdos_renyi(50, 100, 77)
                .into_iter()
                .map(|(u, v)| EdgeUpdate::insert(u, v)),
        );
        let stats = e.apply_batch(&mut g, &batch);
        assert!(stats.applied >= 200);
        assert!(max_invariant_violation(&g, e.state()) < 1e-9);
        let cfg = *e.config();
        let truth = exact_ppr(&g, cfg.source, cfg.alpha, 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            assert!((e.estimate(v) - truth[v as usize]).abs() <= cfg.epsilon + 1e-9);
        }
    }

    #[test]
    fn batch_stats_report_latency_and_counters() {
        let mut g = DynamicGraph::new();
        let mut e = SeqEngine::new(PprConfig::new(0, 0.3, 1e-2), UpdateMode::Batched);
        let stats = e.apply_batch(
            &mut g,
            &[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 0)],
        );
        assert_eq!(stats.applied, 2);
        assert_eq!(stats.counters.restore_ops, 2);
        assert_eq!(stats.counters.batches, 1);
        assert_eq!(e.counters().batches, 1);
    }

    #[test]
    fn duplicate_updates_in_batch_are_noops() {
        let mut g = DynamicGraph::new();
        let mut e = ParallelEngine::new(PprConfig::new(0, 0.3, 1e-2), PushVariant::OPT);
        let stats = e.apply_batch(
            &mut g,
            &[
                EdgeUpdate::insert(0, 1),
                EdgeUpdate::insert(0, 1), // duplicate
                EdgeUpdate::delete(5, 6), // absent
            ],
        );
        assert_eq!(stats.applied, 1);
        assert_eq!(g.num_edges(), 1);
    }
}
