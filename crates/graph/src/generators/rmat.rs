//! R-MAT (recursive matrix) generator, the Graph500 workhorse for
//! power-law directed graphs.

use crate::types::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Quadrant probabilities of the recursive partition. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl Default for RmatParams {
    /// The Graph500 parameterization `(0.57, 0.19, 0.19, 0.05)`, which
    /// yields degree skew comparable to large social networks such as the
    /// paper's Twitter graph.
    fn default() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }
}

/// Samples `m` distinct directed edges (self-loops rejected) on
/// `n = 2^scale` vertices from the R-MAT distribution.
///
/// Noise is added to the quadrant probabilities per recursion level (the
/// standard "smoothing" that avoids the pathological staircase degree
/// distribution of pure R-MAT).
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!((1..=31).contains(&scale), "scale must be in 1..=31");
    let sum = params.a + params.b + params.c + params.d;
    assert!((sum - 1.0).abs() < 1e-9, "quadrant probabilities must sum to 1");
    let n = 1u64 << scale;
    let max_edges = (n * (n - 1)) as usize;
    let m = m.min(max_edges);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let (u, v) = sample_edge(scale, params, &mut rng);
        if u != v && seen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    edges
}

/// Samples `m` raw directed edges (self-loops rejected, **duplicates
/// kept**) from the R-MAT distribution — an edge *stream* rather than an
/// edge *set*. Real ingestion workloads present repeated edges (the
/// paper's update model treats a re-inserted edge as a no-op), and on a
/// skewed stream those repeats concentrate on the hubs, which is exactly
/// what duplicate-checked ingest has to absorb. Used by the
/// `graph_ingest` benchmark and the `perf_report` ingest probe.
pub fn rmat_stream(
    scale: u32,
    m: usize,
    params: RmatParams,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    assert!((1..=31).contains(&scale), "scale must be in 1..=31");
    let sum = params.a + params.b + params.c + params.d;
    assert!((sum - 1.0).abs() < 1e-9, "quadrant probabilities must sum to 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let (u, v) = sample_edge(scale, params, &mut rng);
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

fn sample_edge(scale: u32, p: RmatParams, rng: &mut SmallRng) -> (VertexId, VertexId) {
    let mut u: u64 = 0;
    let mut v: u64 = 0;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        // ±10% multiplicative noise per level, renormalized.
        let noise = |x: f64, rng: &mut SmallRng| x * (0.9 + 0.2 * rng.gen::<f64>());
        let a = noise(p.a, rng);
        let b = noise(p.b, rng);
        let c = noise(p.c, rng);
        let d = noise(p.d, rng);
        let total = a + b + c + d;
        let r = rng.gen::<f64>() * total;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as VertexId, v as VertexId)
}
