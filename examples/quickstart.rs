//! Quickstart: maintain a Personalized PageRank vector over a stream of
//! edge updates, and verify the ε-guarantee against an exact solver.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dppr::core::{
    exact_ppr, DynamicPprEngine, ParallelEngine, PprConfig, PushVariant,
};
use dppr::graph::generators::{barabasi_albert, undirected_to_directed};
use dppr::graph::{EdgeUpdate, DynamicGraph, GraphStream, SlidingWindow};

fn main() {
    // A small scale-free social graph, streamed under the random edge
    // permutation model with a 10% initial window. DPPR_EXAMPLE_N shrinks
    // the graph (the CI smoke test runs with a tiny one).
    let n: u32 = match std::env::var("DPPR_EXAMPLE_N") {
        Ok(s) => s.parse().expect("DPPR_EXAMPLE_N must be a vertex count"),
        Err(_) => 2_000,
    };
    let edges = undirected_to_directed(&barabasi_albert(n, 4, 7));
    let stream = GraphStream::directed(edges).permuted(42);
    let mut window = SlidingWindow::new(stream, 0.1);

    // Maintain PPR w.r.t. vertex 0 with the fully-optimized parallel push.
    let source = 0;
    let cfg = PprConfig::new(source, 0.15, 1e-5);
    let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut graph = DynamicGraph::new();

    // Bootstrap: the initial window is just a big insertion batch.
    let init: Vec<EdgeUpdate> = window.initial_updates();
    let stats = engine.apply_batch(&mut graph, &init);
    println!(
        "bootstrap: {} arcs in {:.2?} ({} pushes)",
        stats.applied, stats.latency, stats.counters.pushes
    );

    // Stream: slide the window 20 times, 100 logical edges per slide.
    for slide in 1..=20 {
        let Some(batch) = window.slide(100) else { break };
        let stats = engine.apply_batch(&mut graph, &batch);
        if slide % 5 == 0 {
            println!(
                "slide {slide:>3}: {} updates in {:.2?} ({} pushes, {} iterations)",
                batch.len(),
                stats.latency,
                stats.counters.pushes,
                stats.counters.iterations
            );
        }
    }

    // The maintained estimates are ε-accurate — prove it.
    let truth = exact_ppr(&graph, source, cfg.alpha, 1e-12);
    let max_err = (0..graph.num_vertices() as u32)
        .map(|v| (engine.estimate(v) - truth[v as usize]).abs())
        .fold(0.0f64, f64::max);
    println!("max |estimate − exact| = {max_err:.2e} (ε = {:.0e})", cfg.epsilon);
    assert!(max_err <= cfg.epsilon);

    // Top-5 vertices by PPR w.r.t. the source.
    let mut top: Vec<(u32, f64)> = (0..graph.num_vertices() as u32)
        .map(|v| (v, engine.estimate(v)))
        .collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top-5 by PPR w.r.t. {source}:");
    for (v, p) in top.into_iter().take(5) {
        println!("  vertex {v:>5}  ppr {p:.6}");
    }
}
