//! Snapshot-consistency stress test (no loom, just real threads).
//!
//! N reader threads hammer `top_k` / `above_threshold` against published
//! snapshots while the write loop applies window slides and publishes an
//! epoch per batch. The torn-read oracle is exact: before publishing, the
//! writer records each snapshot's content fingerprint under its `(cell,
//! epoch)`; every snapshot a reader observes must fingerprint-match what
//! the writer published for that epoch — a mix of two epochs' bytes (a
//! torn state) cannot pass. On top of that readers check per-cell epoch
//! monotonicity, estimate range, and query-internal consistency.

use dppr_core::{MultiSourcePpr, PushVariant};
use dppr_graph::generators::erdos_renyi;
use dppr_graph::GraphStream;
use dppr_serve::{EpochDomain, QuerySnapshot, SnapshotCell};
use dppr_stream::StreamDriver;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

const SOURCES: [u32; 3] = [0, 3, 7];
const READERS: usize = 6;
const SLIDES: usize = 60;
const BATCH: usize = 60;
const EPS: f64 = 1e-3;

#[test]
fn concurrent_readers_never_observe_torn_snapshots() {
    let stream = GraphStream::directed(erdos_renyi(250, 7_000, 11)).permuted(3);
    let domain = EpochDomain::new(READERS + 1);
    let mut driver = StreamDriver::new(stream, 0.1);
    let mut multi = MultiSourcePpr::new(&SOURCES, 0.2, EPS, PushVariant::OPT);

    // Bootstrap and publish epoch 1.
    let init = driver.take_initial_batch();
    multi.apply_batch(driver.graph_mut(), &init);
    let fingerprints: Arc<Mutex<HashMap<(usize, u64), u64>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let publish = |multi: &MultiSourcePpr,
                   cells: &[Arc<SnapshotCell>],
                   domain: &EpochDomain,
                   epoch: u64| {
        for (i, cell) in cells.iter().enumerate() {
            let snap = QuerySnapshot::from_state(multi.state(i), epoch);
            fingerprints
                .lock()
                .unwrap()
                .insert((i, epoch), snap.fingerprint());
            cell.publish(domain, Arc::new(snap));
        }
    };
    let epoch0 = domain.advance();
    let cells: Vec<Arc<SnapshotCell>> = (0..SOURCES.len())
        .map(|i| {
            let snap = QuerySnapshot::from_state(multi.state(i), epoch0);
            fingerprints
                .lock()
                .unwrap()
                .insert((i, epoch0), snap.fingerprint());
            Arc::new(SnapshotCell::new(Arc::new(snap)))
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let domain = Arc::clone(&domain);
            let cells = cells.clone();
            let stop = Arc::clone(&stop);
            let fingerprints = Arc::clone(&fingerprints);
            std::thread::spawn(move || {
                let reader = domain.register_reader();
                let mut last_epoch = vec![0u64; cells.len()];
                let mut observed_epochs = 0u64;
                let mut loads = 0u64;
                while !stop.load(SeqCst) {
                    for (i, cell) in cells.iter().enumerate() {
                        let snap = cell.load(&reader);
                        loads += 1;
                        // (1) Publication order: epochs are monotone per cell.
                        assert!(
                            snap.epoch() >= last_epoch[i],
                            "reader {r}: cell {i} epoch went backwards \
                             ({} after {})",
                            snap.epoch(),
                            last_epoch[i]
                        );
                        if snap.epoch() > last_epoch[i] {
                            observed_epochs += 1;
                            last_epoch[i] = snap.epoch();
                        }
                        // (2) Exact content check against what the writer
                        // published for this epoch: a torn state cannot
                        // fingerprint-match.
                        let expect = fingerprints
                            .lock()
                            .unwrap()
                            .get(&(i, snap.epoch()))
                            .copied();
                        assert_eq!(
                            Some(snap.fingerprint()),
                            expect,
                            "reader {r}: cell {i} epoch {} contents do not \
                             match the published snapshot",
                            snap.epoch()
                        );
                        // (3) Internal consistency: metadata frozen, every
                        // estimate a valid ε-bounded probability, queries
                        // self-consistent.
                        assert_eq!(snap.source(), SOURCES[i]);
                        assert_eq!(snap.epsilon(), EPS);
                        for &p in snap.estimates() {
                            assert!(
                                (-EPS..=1.0 + EPS).contains(&p),
                                "estimate {p} out of ε-bounded range"
                            );
                        }
                        let top = snap.top_k(5);
                        for w in top.ranking.windows(2) {
                            assert!(
                                w[0].estimate > w[1].estimate
                                    || (w[0].estimate == w[1].estimate
                                        && w[0].vertex < w[1].vertex),
                                "top-k ranking out of order"
                            );
                        }
                        let thr = snap.above_threshold(0.01);
                        for b in &thr.certain {
                            assert!(b.lo >= 0.01);
                        }
                        for b in &thr.possible {
                            assert!(b.hi >= 0.01 && b.lo < 0.01);
                        }
                    }
                }
                (observed_epochs, loads)
            })
        })
        .collect();

    // The writer: slide, apply, publish — while the readers run.
    let mut slides = 0usize;
    while slides < SLIDES {
        let Some(batch) = driver.slide_batch(BATCH) else {
            break;
        };
        multi.apply_batch(driver.graph_mut(), &batch);
        let epoch = domain.advance();
        publish(&multi, &cells, &domain, epoch);
        slides += 1;
    }
    stop.store(true, SeqCst);

    let mut total_epoch_advances = 0u64;
    let mut total_loads = 0u64;
    for handle in readers {
        let (observed, loads) = handle.join().expect("reader thread panicked");
        total_epoch_advances += observed;
        total_loads += loads;
    }
    // Liveness: the writer made real progress under read load, and readers
    // actually saw the epochs move (not just the bootstrap snapshot).
    assert!(slides >= 20, "writer starved: only {slides} slides");
    assert!(
        total_epoch_advances >= READERS as u64,
        "readers saw almost no epoch movement ({total_epoch_advances})"
    );
    assert!(total_loads > 0);
    // Retired lists drain once readers are gone: publish one more round
    // and check nothing accumulates unboundedly.
    let epoch = domain.advance();
    publish(&multi, &cells, &domain, epoch);
    for cell in &cells {
        assert_eq!(cell.retired_len(), 0);
    }
}
