//! Source-vertex selection (paper Table 2: "randomly chosen vertices with
//! Top-10, Top-1K and Top-1M out-degrees").

use dppr_graph::{DynamicGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Picks a uniformly random vertex among the `bucket` highest-out-degree
/// vertices of `g` (e.g. `bucket = 10` for the paper's "Top-10" setting).
///
/// # Panics
/// If the graph has no vertices.
pub fn pick_top_degree_source(g: &DynamicGraph, bucket: usize, seed: u64) -> VertexId {
    assert!(g.num_vertices() > 0, "cannot pick a source from an empty graph");
    let top = g.top_out_degree_vertices(bucket.max(1));
    let mut rng = SmallRng::seed_from_u64(seed);
    top[rng.gen_range(0..top.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> DynamicGraph {
        // Vertex 0 has out-degree 5, vertex 1 has 2, the rest ≤ 1.
        let mut g = DynamicGraph::new();
        for v in 1..=5 {
            g.insert_edge(0, v);
        }
        g.insert_edge(1, 2);
        g.insert_edge(1, 3);
        g.insert_edge(2, 0);
        g
    }

    #[test]
    fn bucket_one_is_the_max_degree_vertex() {
        let g = star();
        assert_eq!(pick_top_degree_source(&g, 1, 99), 0);
    }

    #[test]
    fn bucket_two_picks_among_top_two() {
        let g = star();
        for seed in 0..20 {
            let s = pick_top_degree_source(&g, 2, seed);
            assert!(s == 0 || s == 1, "unexpected source {s}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = star();
        assert_eq!(
            pick_top_degree_source(&g, 3, 5),
            pick_top_degree_source(&g, 3, 5)
        );
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        pick_top_degree_source(&DynamicGraph::new(), 10, 0);
    }
}
