//! Ablation: the hybrid granularity threshold of the parallel push
//! (`PushOpts::seq_threshold`).
//!
//! `always_parallel` (threshold 0) pays rayon's fork/join on every
//! iteration — the overhead CilkPlus's lazy stealing hides; `always_inline`
//! (threshold ∞) is the one-worker schedule; `hybrid` is the default.

use criterion::{criterion_group, criterion_main, Criterion};
use dppr_bench::{time_slides, Workload};
use dppr_core::{ParallelEngine, PushOpts, PushVariant};
use dppr_graph::presets;

fn bench_granularity(c: &mut Criterion) {
    let workload = Workload::prepare(presets::small_sim(), 3, 0.1, 1_000);
    let eps = 1e-5;
    let batch = 1_000usize;
    let mut group = c.benchmark_group("granularity");
    group.sample_size(10);
    for (name, threshold) in [
        ("always_parallel", 0usize),
        ("hybrid_4096", 4096),
        ("always_inline", usize::MAX),
    ] {
        let cfg = workload.config(eps);
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                time_slides(
                    || {
                        let mut e = ParallelEngine::new(cfg, PushVariant::OPT);
                        e.set_opts(PushOpts { seq_threshold: threshold });
                        Box::new(e)
                    },
                    &workload,
                    batch,
                    iters,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
